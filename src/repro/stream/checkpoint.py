"""One-file checkpoint/restore for the streaming pipeline.

A long-running stream deployment must survive process restarts: losing
the detector's ring buffers, scaler bounds, P² sketch, threshold state,
or the mitigator's anchors means minutes of warmup and different
decisions after every restart.  :func:`save_checkpoint` bundles the
*entire* pipeline — every component's ``state_dict()`` plus the trained
autoencoder's architecture and weights — into a single ``.npz`` archive;
:func:`load_checkpoint` rebuilds it in a fresh process with **bit-exact
resume parity**: checkpoint at any tick/block boundary, reload, and the
remaining stream produces the same flags, scores and mitigated values
an uninterrupted run would have (see
``tests/stream/test_checkpoint.py``).

Usage::

    from repro.stream import StreamReplayEngine, checkpoint

    engine = StreamReplayEngine(detector, mitigator="hold_last_good")
    engine.run(fleet[:, :5000], block_size=32)
    checkpoint.save_checkpoint("pipeline.npz", engine)

    # ... later, in a fresh process:
    restored = checkpoint.load_checkpoint("pipeline.npz")
    restored.engine().run(fleet[:, 5000:], block_size=32)

Only the built-in mitigation policies (the
:mod:`repro.stream.mitigation` registry) round-trip; a custom policy
class raises at save time rather than producing an archive that cannot
be reloaded.
"""

from __future__ import annotations

import json
import time
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro import obs
from repro.anomaly.autoencoder import AutoencoderConfig, LSTMAutoencoder
from repro.nn import Adam
from repro.nn.serialization import model_from_config, model_to_config
from repro.stream._state import StateDict, nest, unnest
from repro.stream.detector import StreamingDetector
from repro.stream.engine import StreamReplayEngine
from repro.stream.mitigation import _REGISTRY, StreamingMitigator
from repro.stream.scaler import StreamingMinMaxScaler

_FORMAT = "repro.stream.checkpoint"
_VERSION = 1


class CheckpointError(ValueError):
    """A checkpoint archive could not be read.

    Raised by :func:`load_checkpoint` when the file is missing,
    truncated, corrupt, or not a stream checkpoint at all — always
    naming the offending path, instead of surfacing a raw
    ``zipfile``/``zlib``/numpy traceback from deep inside the archive
    reader.  Subclasses :class:`ValueError` so pre-existing callers
    catching that keep working.
    """


def _library_version() -> str:
    # Imported lazily: repro.stream.checkpoint loads while the repro
    # package itself is still initialising.
    import repro

    return repro.__version__


@dataclass
class StreamCheckpoint:
    """A restored pipeline: detector, optional mitigator, engine config."""

    detector: StreamingDetector
    mitigator: StreamingMitigator | None
    feedback: bool
    extra: dict[str, np.ndarray]
    #: Provenance recorded at save time: library/numpy versions and the
    #: creation timestamp (empty for checkpoints predating PR 6).
    library: dict = field(default_factory=dict)

    def engine(self) -> StreamReplayEngine:
        """Rebuild the replay engine exactly as it was saved.

        The mitigator's no-anchor ``fallback`` is part of the serialized
        state: the engine constructor's automatic scaler wiring must not
        re-derive it from the *restored* bounds (which may have widened
        since the original engine was built), or the resumed run could
        repair no-anchor flags differently than the uninterrupted one.
        """
        fallback = None if self.mitigator is None else self.mitigator.fallback.copy()
        engine = StreamReplayEngine(
            self.detector, mitigator=self.mitigator, feedback=self.feedback
        )
        if fallback is not None:
            engine.mitigator.set_fallback(fallback)
            # Keep the engine's wiring shortcut coherent with the
            # restored (possibly partially-unset) fallback.
            engine._fallback_wired = (
                self.detector.scaler is None or bool(np.isfinite(fallback).all())
            )
        return engine


def _mitigator_meta(mitigator: StreamingMitigator) -> dict:
    registered = _REGISTRY.get(mitigator.name)
    if registered is not type(mitigator):
        raise ValueError(
            f"cannot checkpoint mitigator {type(mitigator).__name__!r}: only "
            f"the built-in policies ({', '.join(sorted(_REGISTRY))}) can be "
            "rebuilt at load time"
        )
    return {"name": mitigator.name, "config": mitigator.get_config()}


def _library_meta() -> dict:
    """Provenance: which build wrote this archive, and when."""
    return {
        "version": _library_version(),
        "numpy": np.__version__,
        # Wall-clock provenance is the payload here, not hidden state.
        "created_unix": time.time(),  # reprolint: disable=RPR004
    }


def pipeline_meta(
    detector: StreamingDetector,
    mitigator: StreamingMitigator | None,
    feedback: bool,
) -> dict:
    """The JSON-serializable rebuild recipe for a pipeline.

    Everything :func:`build_pipeline` needs to reconstruct the exact
    detector/mitigator *structure* (state is shipped separately as
    ``state_dict()`` arrays).  Shared between the single-file checkpoint
    and the sharded manifest, so both describe pipelines identically.
    """
    return {
        "detector": {
            "n_stations": detector.n_stations,
            "percentile": detector.percentile,
            "min_calibration_scores": detector.min_calibration_scores,
            "missing": detector.missing,
            "adaptive": detector.adaptive is not None,
            "scaler": (
                None
                if detector.scaler is None
                else {"feature_range": list(detector.scaler.feature_range)}
            ),
        },
        "autoencoder": asdict(detector.autoencoder.config),
        "model": model_to_config(detector.autoencoder.model),
        "mitigator": None if mitigator is None else _mitigator_meta(mitigator),
        "feedback": bool(feedback),
    }


def build_autoencoder(meta: dict, weights: list[np.ndarray]) -> LSTMAutoencoder:
    """Rebuild the exact saved autoencoder (architecture, dtype, weights)."""
    ae_config = dict(meta["autoencoder"])
    ae_config["encoder_units"] = tuple(ae_config["encoder_units"])
    ae_config["decoder_units"] = tuple(ae_config["decoder_units"])
    config = AutoencoderConfig(**ae_config)
    model = model_from_config(meta["model"])
    model.compile(optimizer=Adam(config.learning_rate), loss="mse")
    model.set_weights(weights)
    return LSTMAutoencoder.from_model(config, model)


def build_pipeline(
    meta: dict,
    autoencoder: LSTMAutoencoder,
    n_stations: int | None = None,
) -> tuple[StreamingDetector, StreamingMitigator | None]:
    """Reconstruct a (state-less) detector + mitigator from ``meta``.

    ``n_stations`` overrides the fleet size recorded in ``meta`` — the
    shard layer rebuilds shard-local pipelines from the *fleet-wide*
    recipe this way.  Component state is loaded separately via
    ``load_state_dict``.
    """
    detector_meta = meta["detector"]
    if n_stations is None:
        n_stations = int(detector_meta["n_stations"])
    scaler = None
    if detector_meta["scaler"] is not None:
        scaler = StreamingMinMaxScaler(
            n_stations,
            feature_range=tuple(detector_meta["scaler"]["feature_range"]),
        )
    detector = StreamingDetector(
        autoencoder,
        n_stations,
        scaler=scaler,
        threshold="p2" if detector_meta["adaptive"] else None,
        percentile=detector_meta["percentile"],
        min_calibration_scores=detector_meta["min_calibration_scores"],
        missing=detector_meta["missing"],
    )
    mitigator = None
    if meta["mitigator"] is not None:
        mitigator = _REGISTRY[meta["mitigator"]["name"]](
            n_stations, **meta["mitigator"]["config"]
        )
    return detector, mitigator


def save_checkpoint(
    path: str | Path,
    pipeline: StreamReplayEngine | StreamingDetector,
    extra: dict[str, np.ndarray] | None = None,
) -> Path:
    """Write the whole pipeline to one ``.npz`` archive.

    ``pipeline`` is a :class:`~repro.stream.engine.StreamReplayEngine`
    (detector + mitigator + feedback flag) or a bare
    :class:`~repro.stream.detector.StreamingDetector`.  ``extra`` lets
    the caller stash arbitrary named arrays (e.g. the replay position in
    an offline fleet matrix) in the same file.  Returns the written
    path (always with the ``.npz`` suffix).
    """
    reg = obs.registry()
    save_start = time.perf_counter()
    if isinstance(pipeline, StreamReplayEngine):
        detector = pipeline.detector
        mitigator = pipeline.mitigator
        feedback = pipeline.feedback
    elif isinstance(pipeline, StreamingDetector):
        detector = pipeline
        mitigator = None
        feedback = True
    else:
        raise TypeError(
            f"pipeline must be a StreamReplayEngine or StreamingDetector, "
            f"got {type(pipeline).__name__}"
        )

    meta = {
        "format": _FORMAT,
        "version": _VERSION,
        # Provenance read back at load time to warn on cross-version
        # restores.
        "library": _library_meta(),
        # A single-file archive is always shard 0 of 1; the per-shard
        # members of a sharded fleet checkpoint carry their real
        # coordinates and are only loadable through the manifest
        # (:func:`repro.stream.shard.load_sharded_checkpoint`).
        "sharding": {"shards": 1, "shard_index": 0},
    } | pipeline_meta(detector, mitigator, feedback)

    arrays: StateDict = {"meta": np.asarray(json.dumps(meta))}
    arrays |= {
        f"model.w{i}": weight
        for i, weight in enumerate(detector.autoencoder.model.get_weights())
    }
    arrays |= nest("detector", detector.state_dict())
    if mitigator is not None:
        arrays |= nest("mitigator", mitigator.state_dict())
    for key, value in (extra or {}).items():
        arrays[f"extra.{key}"] = np.asarray(value)

    path = Path(path)
    if path.suffix != ".npz":
        # Append rather than with_suffix(): a dotted checkpoint name like
        # "ckpt.tick1000" must not collapse onto "ckpt.npz" and silently
        # overwrite a sibling checkpoint.
        path = path.with_name(path.name + ".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    if reg.enabled:
        reg.histogram(
            "repro_stream_checkpoint_save_seconds",
            help="Wall-clock of save_checkpoint.",
        ).observe(time.perf_counter() - save_start)
        reg.counter(
            "repro_stream_checkpoint_saves_total", help="Checkpoints written."
        ).inc()
        reg.gauge(
            "repro_stream_checkpoint_bytes",
            help="Size of the most recently written checkpoint archive.",
        ).set(float(path.stat().st_size))
    return path


def load_checkpoint(path: str | Path) -> StreamCheckpoint:
    """Rebuild a pipeline saved by :func:`save_checkpoint`.

    The restored detector resumes bit-exactly: same buffers, bounds,
    sketch markers, thresholds, tick counter, and autoencoder weights
    (rebuilt under the dtype the model was saved with, so inference
    arithmetic is unchanged).
    """
    reg = obs.registry()
    load_start = time.perf_counter()
    path = Path(path)
    try:
        # Materialize every entry while the archive is open: a truncated
        # file can pass the zip directory check yet fail mid-entry, and
        # that failure must surface here, not lazily during rebuild.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: the archive is missing, "
            f"truncated, or corrupt ({type(exc).__name__}: {exc})"
        ) from exc
    if "meta" not in arrays:
        raise CheckpointError(f"{path} is not a stream checkpoint (no meta entry)")
    try:
        meta = json.loads(str(arrays.pop("meta")))
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} has a corrupt meta entry: {exc}"
        ) from exc
    if meta.get("format") != _FORMAT:
        raise CheckpointError(
            f"{path} is not a stream checkpoint: {meta.get('format')!r}"
        )
    if meta.get("version") != _VERSION:
        raise CheckpointError(
            f"checkpoint {path}: version {meta.get('version')!r} is not "
            f"supported (this build reads version {_VERSION})"
        )
    # Provenance (absent from pre-PR-6 archives): resuming across
    # library versions is allowed — state layouts are strictly validated
    # downstream — but worth a warning, since bit-exact resume parity is
    # only promised within one build.
    library = dict(meta.get("library") or {})
    saved_version = library.get("version")
    if saved_version is not None and saved_version != _library_version():
        warnings.warn(
            f"checkpoint {path.name} was written by repro {saved_version}, "
            f"loading under repro {_library_version()}; resume parity is "
            "only guaranteed within one library version",
            RuntimeWarning,
            stacklevel=2,
        )
    sharding = meta.get("sharding") or {"shards": 1, "shard_index": 0}
    if sharding.get("shards", 1) != 1:
        raise CheckpointError(
            f"checkpoint {path.name} is shard {sharding.get('shard_index')} of "
            f"{sharding.get('shards')} — one member of a sharded fleet "
            "checkpoint.  Load the manifest directory that contains it with "
            "repro.stream.shard.load_sharded_checkpoint (or "
            "ShardedFleetEngine.from_checkpoint) instead"
        )

    # Autoencoder: rebuild the exact saved architecture (including its
    # compute dtype) and install the saved weights.
    weights = unnest(arrays, "model")
    autoencoder = build_autoencoder(
        meta, [weights[f"w{i}"] for i in range(len(weights))]
    )

    detector, mitigator = build_pipeline(meta, autoencoder)
    detector.load_state_dict(unnest(arrays, "detector"))
    if mitigator is not None:
        mitigator.load_state_dict(unnest(arrays, "mitigator"))

    restored = StreamCheckpoint(
        detector=detector,
        mitigator=mitigator,
        feedback=bool(meta["feedback"]),
        extra=unnest(arrays, "extra"),
        library=library,
    )
    if reg.enabled:
        reg.histogram(
            "repro_stream_checkpoint_load_seconds",
            help="Wall-clock of load_checkpoint.",
        ).observe(time.perf_counter() - load_start)
        reg.counter(
            "repro_stream_checkpoint_loads_total", help="Checkpoints restored."
        ).inc()
    return restored
