"""Shared per-tick input validation for the streaming state banks.

Every streaming component (:class:`~repro.stream.buffers.RingBufferBank`,
:class:`~repro.stream.scaler.StreamingMinMaxScaler`,
:class:`~repro.stream.quantile.P2QuantileBank`) accepts one reading per
addressed station per tick; this helper normalises and validates that
``(values, stations)`` pair in one place.  Duplicate station indices are
rejected outright — numpy fancy-index assignment would silently keep
only the last reading per slot, and a dropped reading must be an error,
not a quiet data loss.
"""

from __future__ import annotations

import numpy as np


def check_tick(
    values: np.ndarray, stations: np.ndarray | None, n_stations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validate one tick of per-station values; returns float/index arrays."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    if stations is None:
        if len(values) != n_stations:
            raise ValueError(f"expected {n_stations} values, got {len(values)}")
        return values, np.arange(n_stations)
    stations = np.asarray(stations, dtype=np.int64)
    if stations.ndim != 1 or len(stations) != len(values):
        raise ValueError("stations must be 1-D and match values in length")
    if len(np.unique(stations)) != len(stations):
        raise ValueError(
            "stations must not contain duplicate indices; fancy-index "
            "updates would silently drop all but one reading per station"
        )
    return values, stations
