"""Shared per-tick/per-block input validation for the streaming state banks.

Every streaming component (:class:`~repro.stream.buffers.RingBufferBank`,
:class:`~repro.stream.scaler.StreamingMinMaxScaler`,
:class:`~repro.stream.quantile.P2QuantileBank`) accepts one reading per
addressed station per tick — or a ``(k, B)`` block of ``B`` consecutive
readings — and this module normalises and validates those inputs in one
place.  Duplicate station indices are rejected outright — numpy
fancy-index assignment would silently keep only the last reading per
slot, and a dropped reading must be an error, not a quiet data loss.

Validation happens ONCE per tick/block at the detector boundary; the
banks' public methods validate for standalone use, but expose
``*_checked`` fast paths so a pipeline never pays for the same check
three times (scaler fit, scaler transform, buffer push) on one input.
"""

from __future__ import annotations

import numpy as np


def _check_stations(stations: np.ndarray, n_values: int, n_stations: int) -> np.ndarray:
    stations = np.asarray(stations, dtype=np.int64)
    if stations.ndim != 1 or len(stations) != n_values:
        raise ValueError("stations must be 1-D and match values in length")
    if stations.size:
        low, high = stations.min(), stations.max()
        if low < 0 or high >= n_stations:
            raise ValueError(
                f"station indices must be in [0, {n_stations}), "
                f"got range [{low}, {high}]"
            )
        # Duplicate test: O(k) via bincount when the addressed index range
        # is dense (the common full-fleet / contiguous-subset case — the
        # previous `len(np.unique(...))` sorted + allocated per tick);
        # fall back to unique for a sparse handful of a huge fleet, where
        # a range-sized counter array would dwarf k.
        if stations.size > 1:
            if high - low < 4 * stations.size:
                duplicated = np.bincount(stations - low).max() > 1
            else:
                duplicated = len(np.unique(stations)) != len(stations)
            if duplicated:
                raise ValueError(
                    "stations must not contain duplicate indices; fancy-index "
                    "updates would silently drop all but one reading per station"
                )
    return stations


def check_drop(stations: np.ndarray, n_stations: int) -> np.ndarray:
    """Validate a ``drop_stations`` index list (shared by every bank).

    Indices must be valid, duplicate-free, and leave at least one
    survivor.
    """
    stations = np.asarray(stations, dtype=np.int64).ravel()
    stations = _check_stations(stations, len(stations), n_stations)
    if len(stations) >= n_stations:
        raise ValueError("cannot drop every station")
    return stations


def check_tick(
    values: np.ndarray, stations: np.ndarray | None, n_stations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validate one tick of per-station values; returns float/index arrays."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    if stations is None:
        if len(values) != n_stations:
            raise ValueError(f"expected {n_stations} values, got {len(values)}")
        return values, np.arange(n_stations)
    return values, _check_stations(stations, len(values), n_stations)


def check_block(
    values: np.ndarray, stations: np.ndarray | None, n_stations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a ``(k, B)`` block of per-station readings.

    Each row is one station's next ``B`` consecutive readings (oldest
    first).  Returns ``(values, stations)`` with ``values`` float64 and
    ``stations`` an index array covering every row.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"block values must be 2-D (k, B), got shape {values.shape}")
    if values.shape[1] < 1:
        raise ValueError("block must contain at least one tick of readings")
    if stations is None:
        if values.shape[0] != n_stations:
            raise ValueError(
                f"expected {n_stations} block rows, got {values.shape[0]}"
            )
        return values, np.arange(n_stations)
    return values, _check_stations(stations, values.shape[0], n_stations)
