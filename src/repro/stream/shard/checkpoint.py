"""Sharded fleet checkpoints: one manifest directory, per-shard members.

A sharded checkpoint is a *directory*::

    ckpt/
      manifest.json    format, pipeline recipe, assignment, shard table
      model.npz        trained autoencoder weights (shared, written once)
      shard-0000.npz   shard 0's detector/mitigator state
      shard-0001.npz   ...
      extra.npz        caller-provided named arrays (optional)

Each ``shard-*.npz`` is a self-describing member: its embedded meta
carries ``sharding: {shards: k, shard_index: s}``, so feeding one to
the single-file :func:`repro.stream.checkpoint.load_checkpoint` raises
a :class:`~repro.stream.checkpoint.CheckpointError` pointing back at
the manifest loader instead of silently restoring a fraction of the
fleet.

:func:`save_sharded_checkpoint` defaults to **delta** saves: only
shards mutated since they were last written (``engine`` tracks dirty
shards by its failover journal) are rewritten; clean member files are
left byte-for-byte untouched — the manifest is rewritten every save,
atomically, so a reader never observes a half-updated checkpoint.
Saving also refreshes the engine's failover snapshots, truncating the
gap-replay journal.

:func:`load_sharded_checkpoint` verifies every member against the
manifest's recorded size + SHA-256 before restoring, and resumes a
:class:`~repro.stream.shard.engine.ShardedFleetEngine` with bit-exact
parity to the uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from pathlib import Path

import numpy as np

from repro import obs
from repro.stream import checkpoint as ckpt
from repro.stream._state import nest, unnest
from repro.stream.shard.engine import ShardedFleetEngine
from repro.stream.shard.plan import ShardPlan

MANIFEST_NAME = "manifest.json"
_MANIFEST_FORMAT = "repro.stream.shard.checkpoint"
_MANIFEST_VERSION = 1


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _shard_meta(engine: ShardedFleetEngine, shard: int) -> dict:
    """The embedded meta of one shard member file.

    Mirrors the single-file layout (same format tag and pipeline
    recipe, shard-local ``n_stations``) so the member is recognizably a
    stream checkpoint — just one that only the manifest loader accepts.
    """
    meta = json.loads(json.dumps(engine._meta))
    meta["detector"]["n_stations"] = int(engine._members[shard].size)
    return {
        "format": ckpt._FORMAT,
        "version": ckpt._VERSION,
        "library": ckpt._library_meta(),
        "sharding": {"shards": engine.n_shards, "shard_index": shard},
    } | meta


def _write_shard(path: Path, engine: ShardedFleetEngine, shard: int) -> dict:
    """Fetch, serialize, and fsync-write one shard's state; return state."""
    state = engine.shard_state(shard)
    arrays = {"meta": np.asarray(json.dumps(_shard_meta(engine, shard)))}
    arrays["members"] = engine._members[shard].copy()
    arrays |= nest("detector", state["detector"])
    if state["mitigator"] is not None:
        arrays |= nest("mitigator", state["mitigator"])
    # Tmp names keep the .npz suffix — np.savez appends one otherwise.
    tmp = path.with_name(path.stem + ".tmp.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)
    return state


def save_sharded_checkpoint(
    path: str | Path,
    engine: ShardedFleetEngine,
    extra: dict[str, np.ndarray] | None = None,
    dirty_only: bool = True,
) -> Path:
    """Write (or incrementally refresh) a sharded checkpoint directory.

    With ``dirty_only=True`` (default) only shards that stepped or
    churned since their last save are rewritten; untouched member files
    keep their bytes and mtimes.  Pass ``dirty_only=False`` to force a
    full rewrite (e.g. onto a fresh directory that an earlier engine
    populated).  ``extra`` arrays are rewritten every save.

    Saving synchronizes the engine's failover baseline: each written
    shard's snapshot is refreshed from the exact state on disk and its
    gap-replay journal is truncated.
    """
    reg = obs.registry()
    save_start = time.perf_counter()
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    model_file = path / "model.npz"
    if not model_file.exists() or not dirty_only:
        arrays = {
            "meta": np.asarray(
                json.dumps(
                    {
                        "format": _MANIFEST_FORMAT + ".model",
                        "version": _MANIFEST_VERSION,
                    }
                )
            )
        }
        arrays |= {f"model.w{i}": w for i, w in enumerate(engine._weights)}
        tmp = model_file.with_name("model.tmp.npz")
        np.savez(tmp, **arrays)
        os.replace(tmp, model_file)

    entries = []
    written = 0
    for s in range(engine.n_shards):
        shard_file = path / f"shard-{s:04d}.npz"
        if dirty_only and not engine._dirty[s] and shard_file.exists():
            pass
        else:
            state = _write_shard(shard_file, engine, s)
            engine._mark_clean(s, state)
            written += 1
        entries.append(
            {
                "index": s,
                "file": shard_file.name,
                "n_stations": int(engine._members[s].size),
                "bytes": int(shard_file.stat().st_size),
                "sha256": _sha256(shard_file),
            }
        )

    extra_file = None
    if extra:
        extra_file = "extra.npz"
        tmp = path / "extra.tmp.npz"
        np.savez(tmp, **{k: np.asarray(v) for k, v in extra.items()})
        os.replace(tmp, path / extra_file)

    pipeline = json.loads(json.dumps(engine._meta))
    pipeline["detector"]["n_stations"] = int(engine.n_stations)
    manifest = {
        "format": _MANIFEST_FORMAT,
        "version": _MANIFEST_VERSION,
        "library": ckpt._library_meta(),
        "n_shards": engine.n_shards,
        "n_stations": int(engine.n_stations),
        "tick": int(engine.tick),
        "assignment": engine.plan.assignment.tolist(),
        "pipeline": pipeline,
        "model_file": model_file.name,
        "extra_file": extra_file,
        "shards": entries,
    }
    # The manifest commits the checkpoint: members are written first,
    # then the manifest replaces atomically, so a crash mid-save leaves
    # the previous manifest describing the previous (complete) state.
    tmp = path / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp, path / MANIFEST_NAME)
    if reg.enabled:
        reg.histogram(
            "repro_shard_checkpoint_save_seconds",
            help="Wall-clock of save_sharded_checkpoint.",
        ).observe(time.perf_counter() - save_start)
        reg.counter(
            "repro_shard_checkpoint_saves_total",
            help="Sharded checkpoints written.",
        ).inc()
        reg.counter(
            "repro_shard_checkpoint_shards_written_total",
            help="Shard member files rewritten (delta saves skip clean shards).",
        ).inc(written)
    return path


def _load_member(path: Path, manifest: dict, entry: dict) -> dict:
    """Read + verify one shard member; return its shard-shaped state."""
    if not path.exists():
        raise ckpt.CheckpointError(
            f"sharded checkpoint member {path} is missing (manifest lists it)"
        )
    size = path.stat().st_size
    if size != entry["bytes"]:
        raise ckpt.CheckpointError(
            f"sharded checkpoint member {path} is {size} bytes, manifest "
            f"recorded {entry['bytes']} — truncated or partially rewritten"
        )
    digest = _sha256(path)
    if digest != entry["sha256"]:
        raise ckpt.CheckpointError(
            f"sharded checkpoint member {path} fails its manifest checksum"
        )
    try:
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:
        raise ckpt.CheckpointError(
            f"cannot read sharded checkpoint member {path}: "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    try:
        meta = json.loads(str(arrays.pop("meta")))
    except (KeyError, json.JSONDecodeError) as exc:
        raise ckpt.CheckpointError(
            f"sharded checkpoint member {path} has a corrupt meta entry"
        ) from exc
    sharding = meta.get("sharding") or {}
    if (
        sharding.get("shards") != manifest["n_shards"]
        or sharding.get("shard_index") != entry["index"]
    ):
        raise ckpt.CheckpointError(
            f"sharded checkpoint member {path} claims shard "
            f"{sharding.get('shard_index')} of {sharding.get('shards')}, "
            f"manifest expects {entry['index']} of {manifest['n_shards']}"
        )
    mitigator_state = unnest(arrays, "mitigator")
    return {
        "detector": unnest(arrays, "detector"),
        "mitigator": mitigator_state or None,
        "members": arrays["members"],
    }


def load_sharded_checkpoint(
    path: str | Path,
    *,
    mp_context=None,
    failover: bool = True,
) -> tuple[ShardedFleetEngine, dict[str, np.ndarray]]:
    """Resume a :class:`ShardedFleetEngine` from a manifest directory.

    Returns ``(engine, extra)``.  Every member file is verified against
    the manifest's recorded size and SHA-256 first; the restored engine
    continues the stream bit-exactly where the checkpoint left off.
    """
    reg = obs.registry()
    load_start = time.perf_counter()
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise ckpt.CheckpointError(
            f"{path} is not a sharded checkpoint (no {MANIFEST_NAME}); "
            "single-file archives load via repro.stream.checkpoint.load_checkpoint"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ckpt.CheckpointError(
            f"cannot read sharded checkpoint manifest {manifest_path}: {exc}"
        ) from exc
    if manifest.get("format") != _MANIFEST_FORMAT:
        raise ckpt.CheckpointError(
            f"{manifest_path} is not a sharded stream checkpoint manifest: "
            f"{manifest.get('format')!r}"
        )
    if manifest.get("version") != _MANIFEST_VERSION:
        raise ckpt.CheckpointError(
            f"sharded checkpoint {path}: manifest version "
            f"{manifest.get('version')!r} is not supported "
            f"(this build reads version {_MANIFEST_VERSION})"
        )
    saved_version = (manifest.get("library") or {}).get("version")
    if saved_version is not None and saved_version != ckpt._library_version():
        warnings.warn(
            f"sharded checkpoint {path.name} was written by repro "
            f"{saved_version}, loading under repro {ckpt._library_version()}; "
            "resume parity is only guaranteed within one library version",
            RuntimeWarning,
            stacklevel=2,
        )

    model_path = path / manifest["model_file"]
    if not model_path.exists():
        raise ckpt.CheckpointError(
            f"sharded checkpoint model file {model_path} is missing"
        )
    try:
        with np.load(model_path, allow_pickle=False) as archive:
            model_arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:
        raise ckpt.CheckpointError(
            f"cannot read sharded checkpoint model file {model_path}: "
            f"({type(exc).__name__}: {exc})"
        ) from exc
    model_weights = unnest(model_arrays, "model")
    weights = [model_weights[f"w{i}"] for i in range(len(model_weights))]

    plan = ShardPlan.from_assignment(manifest["assignment"], manifest["n_shards"])
    if plan.n_stations != manifest["n_stations"]:
        raise ckpt.CheckpointError(
            f"sharded checkpoint {path}: manifest assignment covers "
            f"{plan.n_stations} stations, manifest records "
            f"{manifest['n_stations']}"
        )
    entries = sorted(manifest["shards"], key=lambda e: e["index"])
    if [e["index"] for e in entries] != list(range(manifest["n_shards"])):
        raise ckpt.CheckpointError(
            f"sharded checkpoint {path}: manifest shard table does not cover "
            f"every shard of {manifest['n_shards']} exactly once"
        )
    shard_states = []
    for entry in entries:
        state = _load_member(path / entry["file"], manifest, entry)
        expected = plan.members(entry["index"])
        if not np.array_equal(state.pop("members"), expected):
            raise ckpt.CheckpointError(
                f"sharded checkpoint member {entry['file']} owns different "
                "stations than the manifest assignment routes to it"
            )
        shard_states.append(state)

    extra: dict[str, np.ndarray] = {}
    if manifest.get("extra_file"):
        extra_path = path / manifest["extra_file"]
        if not extra_path.exists():
            raise ckpt.CheckpointError(
                f"sharded checkpoint extra file {extra_path} is missing"
            )
        with np.load(extra_path, allow_pickle=False) as archive:
            extra = {key: archive[key] for key in archive.files}

    engine = ShardedFleetEngine._from_parts(
        manifest["pipeline"],
        weights,
        plan,
        shard_states,
        manifest["tick"],
        mp_context=mp_context,
        failover=failover,
    )
    # The freshly loaded states are the failover baseline, and nothing
    # is dirty relative to the files just read.
    for s in range(engine.n_shards):
        engine._mark_clean(s, shard_states[s])
    if reg.enabled:
        reg.histogram(
            "repro_shard_checkpoint_load_seconds",
            help="Wall-clock of load_sharded_checkpoint.",
        ).observe(time.perf_counter() - load_start)
        reg.counter(
            "repro_shard_checkpoint_loads_total",
            help="Sharded checkpoints restored.",
        ).inc()
    return engine, extra
