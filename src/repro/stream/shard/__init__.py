"""Horizontal scale-out: shard the streaming fleet across processes.

The shard layer splits one logical fleet across N worker processes
while preserving every contract the single-process engine makes —
bit-exact outputs, elastic churn, checkpoint/resume parity — and adds
worker failover (respawn from snapshot + gap replay).

* :class:`ShardPlan` — deterministic, balanced station→shard routing
  that never migrates a survivor.
* :class:`ShardedFleetEngine` — the multi-process
  :class:`~repro.stream.engine.ReplayDriver`: scatter blocks, gather
  decisions, one engine facade.
* :func:`save_sharded_checkpoint` / :func:`load_sharded_checkpoint` —
  per-shard member files under one manifest, with delta saves.
"""

from repro.stream.shard.checkpoint import (
    MANIFEST_NAME,
    load_sharded_checkpoint,
    save_sharded_checkpoint,
)
from repro.stream.shard.engine import (
    ShardedFleetEngine,
    ShardFailoverError,
    ShardWorkerError,
)
from repro.stream.shard.plan import ShardPlan

__all__ = [
    "MANIFEST_NAME",
    "ShardFailoverError",
    "ShardPlan",
    "ShardWorkerError",
    "ShardedFleetEngine",
    "load_sharded_checkpoint",
    "save_sharded_checkpoint",
]
