"""Sharded fleet engine: N worker processes behind one engine facade.

:class:`ShardedFleetEngine` partitions a calibrated streaming pipeline
across worker processes by :class:`~repro.stream.shard.plan.ShardPlan`
and presents the exact :class:`~repro.stream.engine.ReplayDriver`
surface — ``run``/``step_tick``/``step_block``, churn, checkpointing —
so callers (including :mod:`repro.serve`) swap it in for a
:class:`~repro.stream.engine.StreamReplayEngine` unchanged.

Construction clones the fleet pipeline into shard-local pipelines
without losing a bit of state: each worker rebuilds the *full*
pipeline from its serialized state, then drops the complement of its
member set through the engine-level elastic-fleet path (PR 4's
survivors-bit-identical guarantee).  Trained autoencoder weights are
published once through ``multiprocessing.shared_memory`` instead of
being pickled into every worker.

Per step, the parent scatters each shard's rows of the ``(stations,
B)`` block, the workers run the ordinary closed loop (detect →
mitigate → write back) on their slices, and the parent gathers
flags/scores/missing/mitigated back into fleet-shaped arrays.  Because
station state is strictly per-station and the forward pass is
batch-composition-independent for the compact fleet-scale models, the
gathered output is **bit-exact** against a single-process engine over
the same fleet (see ``tests/stream/test_shard_parity.py``; very large
hidden sizes can differ in the last float32 ulp where BLAS kernels
specialize on batch shape — the same caveat block mode already
carries).

Failover: with ``failover=True`` (default) the parent keeps each
shard's last synchronized state snapshot plus a journal of every
mutating command since.  A worker that dies mid-run (OOM-killed,
SIGKILL, crash) is respawned from the snapshot and the journal is
replayed — the gap closes deterministically and the stream continues
as if the worker had never died.  Checkpoints
(:func:`repro.stream.shard.save_sharded_checkpoint`) refresh the
snapshot and truncate the journal, bounding replay work.
"""

from __future__ import annotations

import multiprocessing
import time

import numpy as np

from repro import obs
from repro.stream import checkpoint as ckpt
from repro.stream.detector import BlockResult, StreamingDetector, TickResult
from repro.stream.engine import ReplayDriver, StreamReplayEngine
from repro.stream.shard._shm import publish_weights
from repro.stream.shard._worker import worker_main
from repro.stream.shard.plan import ShardPlan
from repro.utils.rng import SeedLike


class ShardWorkerError(RuntimeError):
    """A shard worker's pipeline raised; the worker traceback is the message."""


class ShardFailoverError(RuntimeError):
    """A shard worker died and could not be (or may not be) recovered."""


def _default_context() -> multiprocessing.context.BaseContext:
    # fork is dramatically cheaper to spawn (no re-import of the
    # package per worker) and is available everywhere the CI matrix
    # runs; fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class _Worker:
    """Parent-side handle: process, pipe, and in-flight bookkeeping."""

    __slots__ = ("process", "conn", "pending", "dead")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: The scattered-but-not-yet-gathered command, for recovery.
        self.pending = None
        self.dead = False


class ShardedFleetEngine(ReplayDriver):
    """Run one streaming pipeline as N shard-local worker processes.

    Parameters
    ----------
    pipeline:
        The calibrated fleet-wide pipeline to partition — a
        :class:`~repro.stream.engine.StreamReplayEngine` (detector +
        mitigator + feedback flag) or a bare
        :class:`~repro.stream.detector.StreamingDetector`.  Its state is
        cloned into the workers; the original object is left untouched
        (and no longer reflects the stream once workers start stepping).
    n_shards:
        Worker process count.  ``1`` is valid (useful as a
        process-isolation wrapper) and still bit-exact.
    seed:
        Seed for the deterministic station→shard deal (ignored when
        ``plan`` is given).
    plan:
        A pre-built :class:`ShardPlan` to route by.
    mp_context:
        A ``multiprocessing`` context or start-method name
        (``"fork"``/``"spawn"``/``"forkserver"``); defaults to fork
        where available.
    failover:
        Keep per-shard snapshots + command journals so a killed worker
        is respawned and its gap replayed.  Disable for fire-and-forget
        throughput runs — a dead worker then raises
        :class:`ShardFailoverError`.  The journal grows until the next
        checkpoint (:func:`~repro.stream.shard.save_sharded_checkpoint`)
        truncates it; long-running deployments should checkpoint
        periodically.
    """

    def __init__(
        self,
        pipeline: StreamReplayEngine | StreamingDetector,
        n_shards: int,
        *,
        seed: SeedLike = 0,
        plan: ShardPlan | None = None,
        mp_context=None,
        failover: bool = True,
    ) -> None:
        if isinstance(pipeline, StreamReplayEngine):
            detector = pipeline.detector
            mitigator = pipeline.mitigator
            feedback = pipeline.feedback
        elif isinstance(pipeline, StreamingDetector):
            detector = pipeline
            mitigator = None
            feedback = True
        else:
            raise TypeError(
                f"pipeline must be a StreamReplayEngine or StreamingDetector, "
                f"got {type(pipeline).__name__}"
            )
        if plan is None:
            plan = ShardPlan(detector.n_stations, n_shards, seed=seed)
        if plan.n_shards != n_shards:
            raise ValueError(
                f"plan has {plan.n_shards} shards, engine asked for {n_shards}"
            )
        if plan.n_stations != detector.n_stations:
            raise ValueError(
                f"plan covers {plan.n_stations} stations, "
                f"detector {detector.n_stations}"
            )
        meta = ckpt.pipeline_meta(detector, mitigator, feedback)
        weights = [
            np.ascontiguousarray(w)
            for w in detector.autoencoder.model.get_weights()
        ]
        full_state = {
            "detector": detector.state_dict(),
            "mitigator": None if mitigator is None else mitigator.state_dict(),
        }
        self._init_common(meta, weights, plan, mp_context, failover)
        self._tick = int(detector.tick)
        all_stations = np.arange(self._n_stations, dtype=np.int64)
        payloads = []
        for s in range(plan.n_shards):
            payloads.append(
                {
                    "kind": "full",
                    "n_stations": self._n_stations,
                    "state": full_state,
                    "complement": np.setdiff1d(all_stations, self._members[s]),
                }
            )
        self._start_workers(payloads)

    # ------------------------------------------------------------------
    # construction plumbing

    def _init_common(self, meta, weights, plan, mp_context, failover) -> None:
        self._meta = meta
        self._weights = weights
        self.plan = plan
        self.feedback = bool(meta["feedback"])
        self.failover = bool(failover)
        if mp_context is None:
            self._ctx = _default_context()
        elif isinstance(mp_context, str):
            self._ctx = multiprocessing.get_context(mp_context)
        else:
            self._ctx = mp_context
        self._n_stations = plan.n_stations
        self._tick = 0
        self._members = [plan.members(s) for s in range(plan.n_shards)]
        self._workers: list[_Worker | None] = [None] * plan.n_shards
        #: Mutating commands since the last snapshot, per shard.
        self._journal: list[list[tuple]] = [[] for _ in range(plan.n_shards)]
        #: Last synchronized (state, n_local) per shard — the failover
        #: respawn baseline.
        self._snapshots: list[tuple | None] = [None] * plan.n_shards
        #: Shards mutated since they were last written to a checkpoint.
        self._dirty = [True] * plan.n_shards
        self._closed = False

    def _start_workers(self, payloads: list[dict]) -> None:
        """Spawn every worker, ship init payloads, collect ready acks."""
        shm, descriptor = publish_weights(self._weights)
        try:
            for s, payload in enumerate(payloads):
                payload |= {
                    "meta": self._meta,
                    "weights": {"shm": descriptor},
                    "feedback": self.feedback,
                    "snapshot": self.failover,
                }
                self._workers[s] = self._spawn(s, payload)
            # Pipelined: all workers build concurrently; acks in order.
            for s in range(self.n_shards):
                status, reply = self._workers[s].conn.recv()
                if status != "ready":
                    raise ShardWorkerError(
                        f"shard {s} worker failed to initialize:\n{reply}"
                    )
                if reply is not None:
                    self._snapshots[s] = (reply, int(self._members[s].size))
        except BaseException:
            self.close()
            raise
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass

    def _spawn(self, shard: int, payload: dict) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn,),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        parent_conn.send(("init", payload))
        return _Worker(process, parent_conn)

    @classmethod
    def _from_parts(
        cls,
        meta: dict,
        weights: list[np.ndarray],
        plan: ShardPlan,
        shard_states: list[dict],
        tick: int,
        *,
        mp_context=None,
        failover: bool = True,
    ) -> "ShardedFleetEngine":
        """Restore from per-shard states (the sharded-checkpoint loader)."""
        engine = cls.__new__(cls)
        engine._init_common(meta, weights, plan, mp_context, failover)
        engine._tick = int(tick)
        payloads = []
        for s in range(plan.n_shards):
            payloads.append(
                {
                    "kind": "shard",
                    "n_stations": int(engine._members[s].size),
                    "state": shard_states[s],
                }
            )
        engine._start_workers(payloads)
        return engine

    @classmethod
    def from_checkpoint(cls, path, **kwargs) -> "ShardedFleetEngine":
        """Resume from a sharded checkpoint directory (manifest + shards)."""
        from repro.stream.shard.checkpoint import load_sharded_checkpoint

        engine, _extra = load_sharded_checkpoint(path, **kwargs)
        return engine

    # ------------------------------------------------------------------
    # ReplayDriver surface

    @property
    def n_stations(self) -> int:
        return self._n_stations

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    @property
    def missing_mode(self) -> str:
        return self._meta["detector"]["missing"]

    @property
    def tick(self) -> int:
        """Ticks processed so far (mirrors ``detector.tick`` fleet-wide)."""
        return self._tick

    def _step_tick(self, values: np.ndarray, reg) -> tuple:
        flags, scores, missing, mitigated = self._scatter_gather("tick", values, reg)
        result = TickResult(
            tick=self._tick,
            scored=~np.isnan(scores),
            scores=scores,
            flags=flags,
            missing=missing,
        )
        self._tick += 1
        return result, mitigated

    def _step_block(self, values: np.ndarray, reg) -> tuple:
        flags, scores, missing, mitigated = self._scatter_gather("block", values, reg)
        result = BlockResult(
            first_tick=self._tick,
            scored=~np.isnan(scores),
            scores=scores,
            flags=flags,
            missing=missing,
        )
        self._tick += int(values.shape[1])
        return result, mitigated

    def _scatter_gather(self, op: str, values: np.ndarray, reg):
        """Route one tick/block through the workers and reassemble."""
        enabled = reg.enabled
        shape = values.shape
        with reg.span("repro_shard_scatter"):
            for s in range(self.n_shards):
                self._dispatch(s, (op, values[self._members[s]]))
        flags = np.zeros(shape, dtype=bool)
        scores = np.full(shape, np.nan, dtype=np.float64)
        missing = np.zeros(shape, dtype=bool)
        mitigated = np.empty(shape, dtype=np.float64)
        errors: list[ShardWorkerError] = []
        with reg.span("repro_shard_gather"):
            # Drain every shard even if one errors — an uncollected reply
            # left in a pipe would be mistaken for the next step's answer.
            for s in range(self.n_shards):
                members = self._members[s]
                try:
                    s_flags, s_scores, s_missing, s_mitigated = self._collect(s)
                except ShardWorkerError as exc:
                    errors.append(exc)
                    continue
                flags[members] = s_flags
                scores[members] = s_scores
                missing[members] = s_missing
                mitigated[members] = s_mitigated
        if errors:
            raise errors[0]
        if enabled:
            n_cols = 1 if values.ndim == 1 else int(values.shape[1])
            for s in range(self.n_shards):
                reg.counter(
                    "repro_shard_readings_total",
                    help="Readings routed through each shard worker.",
                    labels={"shard": str(s)},
                ).inc(int(self._members[s].size) * n_cols)
                reg.gauge(
                    "repro_shard_journal_depth",
                    help="Mutating commands journaled since the shard's "
                    "last snapshot (failover replay length).",
                    labels={"shard": str(s)},
                ).set(float(len(self._journal[s])))
        return flags, scores, missing, mitigated

    # ------------------------------------------------------------------
    # worker I/O with failover

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("engine is closed")

    def _dispatch(self, shard: int, msg: tuple) -> None:
        """Scatter phase: journal + send, deferring failures to collect."""
        self._check_open()
        if self.failover:
            self._journal[shard].append(msg)
        self._dirty[shard] = True
        worker = self._workers[shard]
        worker.pending = msg
        try:
            worker.conn.send(msg)
        except (OSError, BrokenPipeError):
            worker.dead = True

    def _collect(self, shard: int):
        """Gather phase: receive one reply, recovering a dead worker."""
        worker = self._workers[shard]
        msg = worker.pending
        worker.pending = None
        try:
            if worker.dead:
                raise EOFError
            status, reply = worker.conn.recv()
        except (EOFError, OSError):
            status, reply = self._recover(shard)
        if status == "err":
            # The command itself raised (it never mutated a consistent
            # stream); drop it from the replay journal.
            if self.failover and self._journal[shard] and self._journal[shard][-1] is msg:
                self._journal[shard].pop()
            raise ShardWorkerError(f"shard {shard} worker error:\n{reply}")
        return reply

    def _request(self, shard: int, msg: tuple, mutating: bool) -> object:
        """One synchronous command round-trip (churn, state fetches)."""
        self._check_open()
        if mutating:
            if self.failover:
                self._journal[shard].append(msg)
            self._dirty[shard] = True
        worker = self._workers[shard]
        try:
            worker.conn.send(msg)
            status, reply = worker.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            worker.pending = msg if mutating else None
            status, reply = self._recover(shard, resend=None if mutating else msg)
        if status == "err":
            if mutating and self.failover and self._journal[shard] and self._journal[shard][-1] is msg:
                self._journal[shard].pop()
            raise ShardWorkerError(f"shard {shard} worker error:\n{reply}")
        return reply

    def _recover(self, shard: int, resend: tuple | None = None):
        """Respawn a dead worker from snapshot + journal replay.

        The journal's trailing entry is the in-flight command whose
        reply was lost; its replayed reply is returned (``resend``
        covers the non-mutating case, re-issued after replay).
        """
        if not self.failover:
            raise ShardFailoverError(
                f"shard {shard} worker died and failover is disabled"
            )
        if self._snapshots[shard] is None:
            raise ShardFailoverError(
                f"shard {shard} worker died before its first snapshot"
            )
        reg = obs.registry()
        if reg.enabled:
            reg.counter(
                "repro_shard_respawns_total",
                help="Shard workers respawned from snapshot + journal replay.",
                labels={"shard": str(shard)},
            ).inc()
        old = self._workers[shard]
        old.pending = None
        old.dead = False
        try:
            old.conn.close()
        except OSError:
            pass
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=5.0)
        state, n_local = self._snapshots[shard]
        payload = {
            "kind": "shard",
            "n_stations": int(n_local),
            "state": state,
            "meta": self._meta,
            "weights": {"raw": self._weights},
            "feedback": self.feedback,
            "snapshot": False,
        }
        worker = self._spawn(shard, payload)
        self._workers[shard] = worker
        try:
            status, reply = worker.conn.recv()
            if status != "ready":
                raise ShardFailoverError(
                    f"shard {shard} respawn failed to initialize:\n{reply}"
                )
            last = ("ok", None)
            for i, entry in enumerate(self._journal[shard]):
                worker.conn.send(entry)
                last = worker.conn.recv()
                if last[0] != "ok" and i < len(self._journal[shard]) - 1:
                    raise ShardFailoverError(
                        f"shard {shard} journal replay diverged at entry {i}:"
                        f"\n{last[1]}"
                    )
            if resend is not None:
                worker.conn.send(resend)
                last = worker.conn.recv()
            return last
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise ShardFailoverError(
                f"shard {shard} respawned worker died during gap replay"
            ) from exc

    # ------------------------------------------------------------------
    # churn

    def add_stations(
        self,
        n_new: int,
        thresholds: float | np.ndarray | None = None,
        data_min: np.ndarray | None = None,
        data_max: np.ndarray | None = None,
    ) -> None:
        """Grow the fleet: newcomers join the least-loaded shards.

        Semantics mirror :meth:`StreamReplayEngine.add_stations`;
        newcomers take the next global indices and are routed by
        :meth:`ShardPlan.add_stations` (deterministic, no survivor
        migration).
        """
        if n_new < 1:
            raise ValueError(f"n_new must be >= 1, got {n_new}")
        if thresholds is not None and self._meta["detector"]["adaptive"]:
            raise ValueError(
                "adaptive (p2) mode has no fixed thresholds to assign; "
                "new stations calibrate from the stream"
            )
        if self._meta["detector"]["scaler"] is None and (
            data_min is not None or data_max is not None
        ):
            raise ValueError("data_min/data_max require the detector to own a scaler")
        if (data_min is None) != (data_max is None):
            raise ValueError("pass both data_min and data_max, or neither")
        new_thresholds = np.full(n_new, np.nan, dtype=np.float64)
        if thresholds is not None:
            new_thresholds[:] = np.asarray(thresholds, dtype=np.float64)
        data_min = None if data_min is None else np.asarray(data_min, dtype=np.float64)
        data_max = None if data_max is None else np.asarray(data_max, dtype=np.float64)
        start = self._n_stations
        prior_assignment = self.plan.assignment.copy()
        new_assignment = self.plan.add_stations(n_new)
        mutated = False
        try:
            for s in range(self.n_shards):
                idx = np.nonzero(new_assignment == s)[0]
                if not idx.size:
                    continue
                self._request(
                    s,
                    (
                        "add",
                        int(idx.size),
                        None if thresholds is None else new_thresholds[idx],
                        None if data_min is None else data_min[idx],
                        None if data_max is None else data_max[idx],
                    ),
                    mutating=True,
                )
                mutated = True
                self._members[s] = np.concatenate(
                    [self._members[s], (start + idx).astype(np.int64)]
                )
        except ShardWorkerError:
            # Worker-side validation is uniform, so a rejection fires on
            # the first shard that received newcomers — before any worker
            # mutated.  Roll the plan back so the fleet stays consistent.
            if not mutated:
                self.plan.assignment = prior_assignment
            raise
        self._n_stations += int(n_new)

    def drop_stations(self, stations: np.ndarray) -> None:
        """Shrink the fleet; survivors renumber compactly, never migrate."""
        stations = self.plan.drop_stations(stations)
        for s in range(self.n_shards):
            members = self._members[s]
            mask = np.isin(members, stations)
            if mask.any():
                self._request(
                    s, ("drop", np.nonzero(mask)[0].astype(np.int64)), mutating=True
                )
            survivors = members[~mask]
            renumbered = survivors - np.searchsorted(stations, survivors)
            if not np.array_equal(renumbered, members):
                # Global renumbering changed this shard's member indices
                # even if it lost no stations — its checkpoint member
                # (which records them) must be rewritten on the next save.
                self._dirty[s] = True
            self._members[s] = renumbered
        self._n_stations -= int(stations.size)

    # ------------------------------------------------------------------
    # state / checkpointing hooks

    def shard_state(self, shard: int) -> dict:
        """Fetch one worker's current ``{"detector", "mitigator"}`` state."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        return self._request(shard, ("state",), mutating=False)

    def shard_members(self, shard: int) -> np.ndarray:
        """Global station indices owned by ``shard``, in local row order."""
        return self._members[shard].copy()

    def _mark_clean(self, shard: int, state: dict) -> None:
        """A checkpoint captured ``state``: new failover baseline."""
        self._snapshots[shard] = (state, int(self._members[shard].size))
        self._journal[shard].clear()
        self._dirty[shard] = False

    # ------------------------------------------------------------------
    # observability

    def _finalize(self, reg, elapsed, *args):
        report = super()._finalize(reg, elapsed, *args)
        if reg.enabled and report.n_ticks and elapsed > 0:
            for s in range(self.n_shards):
                reg.gauge(
                    "repro_shard_readings_per_second",
                    help="Per-shard throughput of the most recent replay run.",
                    labels={"shard": str(s)},
                ).set(int(self._members[s].size) * report.n_ticks / elapsed)
            reg.gauge(
                "repro_shard_fleet_readings_per_second",
                help="Fleet-level rollup throughput of the most recent "
                "sharded replay run.",
            ).set(report.n_stations * report.n_ticks / elapsed)
        return report

    # ------------------------------------------------------------------
    # lifecycle

    def close(self, timeout: float = 5.0) -> None:
        """Stop every worker; idempotent, safe after partial construction."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        workers = [w for w in getattr(self, "_workers", None) or [] if w is not None]
        deadline = time.perf_counter() + timeout
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in workers:
            worker.process.join(timeout=max(0.1, deadline - time.perf_counter()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def __enter__(self) -> "ShardedFleetEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close(timeout=0.5)
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ShardedFleetEngine(n_stations={self._n_stations}, "
            f"n_shards={self.plan.n_shards}, tick={self._tick}, "
            f"failover={self.failover})"
        )
