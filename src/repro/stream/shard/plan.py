"""Deterministic station→shard partitioning with churn-stable rebalance.

A :class:`ShardPlan` is the single source of truth for which shard owns
which station.  Its contract is built around the engine's bit-exactness
guarantees:

* **Deterministic.**  The same ``(n_stations, n_shards, seed)`` always
  produces the same assignment — a fleet restarted from a checkpoint on
  another machine routes every station to the same shard.
* **Balanced.**  Shard populations differ by at most one station (the
  seeded permutation is dealt round-robin).
* **No survivor migration.**  :meth:`add_stations` assigns newcomers to
  the least-loaded shards and :meth:`drop_stations` only removes; an
  existing station never moves between shards, so per-station streaming
  state (ring buffers, scaler bounds, P² sketches, mitigation anchors)
  never has to cross a process boundary — the property that keeps
  churn bit-identical to the single-engine path.

Within one shard, stations are ordered by ascending global index.
Because newcomers always join at the global tail, a shard's local
ordering is append-only — exactly matching how the worker's detector
grows via ``add_stations`` — and compaction after a drop renumbers both
sides identically.
"""

from __future__ import annotations

import numpy as np

from repro.stream._state import StateDict, check_keys, scalar, take
from repro.stream._ticks import check_drop
from repro.utils.rng import SeedLike, as_generator


class ShardPlan:
    """Station→shard assignment: deterministic, balanced, churn-stable."""

    #: ``seed`` only shapes the initial deal; the assignment itself is
    #: the serialized truth.
    _EPHEMERAL = ("seed",)

    def __init__(
        self,
        n_stations: int,
        n_shards: int,
        seed: SeedLike = 0,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if n_stations < n_shards:
            raise ValueError(
                f"need at least one station per shard: "
                f"{n_stations} stations across {n_shards} shards"
            )
        self.n_shards = int(n_shards)
        self.seed = seed
        # Deal a seeded permutation round-robin: balanced (sizes differ
        # by <= 1) and deterministic in (n_stations, n_shards, seed).
        perm = as_generator(seed).permutation(n_stations)
        assignment = np.empty(n_stations, dtype=np.int64)
        assignment[perm] = np.arange(n_stations, dtype=np.int64) % self.n_shards
        self.assignment = assignment

    # ------------------------------------------------------------------
    # queries

    @property
    def n_stations(self) -> int:
        return int(self.assignment.size)

    def shard_of(self, stations: np.ndarray) -> np.ndarray:
        """Owning shard per (global) station index."""
        return self.assignment[np.asarray(stations, dtype=np.int64)]

    def members(self, shard: int) -> np.ndarray:
        """Global station indices owned by ``shard``, in local order.

        Local order is ascending global index — the order the worker's
        detector rows are laid out in (see module docstring).
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.n_shards})")
        return np.nonzero(self.assignment == shard)[0].astype(np.int64)

    def counts(self) -> np.ndarray:
        """Stations per shard, ``(n_shards,)``."""
        return np.bincount(self.assignment, minlength=self.n_shards).astype(np.int64)

    # ------------------------------------------------------------------
    # churn

    def add_stations(self, n_new: int) -> np.ndarray:
        """Assign ``n_new`` stations joining at the global tail.

        Each newcomer goes to the currently least-loaded shard (lowest
        index on ties) — a deterministic greedy rebalance that never
        touches existing assignments.  Returns the ``(n_new,)`` shard
        assignment of the newcomers.
        """
        if n_new < 1:
            raise ValueError(f"n_new must be >= 1, got {n_new}")
        counts = self.counts()
        new_assignment = np.empty(n_new, dtype=np.int64)
        for i in range(n_new):
            shard = int(np.argmin(counts))
            new_assignment[i] = shard
            counts[shard] += 1
        self.assignment = np.concatenate([self.assignment, new_assignment])
        return new_assignment

    def drop_stations(self, stations: np.ndarray) -> np.ndarray:
        """Remove stations; survivors renumber compactly, never migrate.

        Mirrors :meth:`StreamingDetector.drop_stations`: station ``j``
        becomes ``j - (dropped below j)``, so global and shard-local
        renumbering stay aligned.  A drop that would empty a shard is
        rejected — every worker's detector must keep at least one
        station (the same invariant ``check_drop`` enforces fleet-wide).
        Returns the validated dropped indices, sorted ascending (the
        order the engine's renumbering arithmetic assumes).
        """
        stations = np.sort(check_drop(stations, self.n_stations))
        remaining = self.counts() - np.bincount(
            self.assignment[stations], minlength=self.n_shards
        )
        if (remaining < 1).any():
            emptied = np.nonzero(remaining < 1)[0].tolist()
            raise ValueError(
                f"drop would empty shard(s) {emptied}; every shard must keep "
                "at least one station"
            )
        self.assignment = np.delete(self.assignment, stations)
        return stations

    # ------------------------------------------------------------------
    # state

    def state_dict(self) -> StateDict:
        return {
            "assignment": self.assignment.copy(),
            "n_shards": scalar(self.n_shards),
        }

    def load_state_dict(self, state: StateDict) -> None:
        owner = type(self).__name__
        check_keys(state, {"assignment", "n_shards"}, owner)
        n_shards = int(take(state, "n_shards", owner, (), np.int64))
        if n_shards != self.n_shards:
            raise ValueError(
                f"{owner} state tracks {n_shards} shards, this plan {self.n_shards}"
            )
        assignment = take(state, "assignment", owner, dtype=np.int64)
        if assignment.ndim != 1 or assignment.size < 1:
            raise ValueError(f"{owner} assignment must be a non-empty 1-D array")
        if assignment.min() < 0 or assignment.max() >= self.n_shards:
            raise ValueError(
                f"{owner} assignment references shards outside [0, {self.n_shards})"
            )
        self.assignment = assignment

    @classmethod
    def from_assignment(cls, assignment: np.ndarray, n_shards: int) -> "ShardPlan":
        """Rebuild a plan from a serialized assignment (manifest restore)."""
        assignment = np.asarray(assignment, dtype=np.int64)
        plan = cls.__new__(cls)
        plan.n_shards = int(n_shards)
        plan.seed = None
        plan.assignment = np.empty(0, dtype=np.int64)
        plan.load_state_dict({"assignment": assignment, "n_shards": scalar(n_shards)})
        return plan

    def __repr__(self) -> str:
        return (
            f"ShardPlan(n_stations={self.n_stations}, n_shards={self.n_shards}, "
            f"counts={self.counts().tolist()})"
        )
