"""Shard worker: one process, one shard-local StreamReplayEngine.

The worker is deliberately thin — it builds a *real*
:class:`~repro.stream.engine.StreamReplayEngine` over its shard's
stations and serves step/churn/state commands over a duplex pipe.
Because the shard-local pipeline is the exact single-engine code path
(same detector, same mitigator, same closed loop), per-shard outputs
are bit-identical to the corresponding rows of a fleet-wide engine —
the parity foundation the whole shard layer rests on.

Wire protocol (parent → worker, one tuple per request)::

    ("init", payload)           build the pipeline; reply ("ready", snapshot?)
    ("block", values)           step an (n_local, B) block
    ("tick", values)            step an (n_local,) tick
    ("add", n, thr, dmin, dmax) grow the shard at the local tail
    ("drop", local_indices)     shrink the shard
    ("state",)                  snapshot detector/mitigator state
    ("stop",)                   exit

Replies are ``("ok", result)`` or ``("err", traceback_text)`` — a
pipeline exception (e.g. NaN under ``missing="raise"``) is reported and
the worker keeps serving, exactly as the in-process engine would raise
and remain usable.
"""

from __future__ import annotations

import traceback

from repro.stream import checkpoint as ckpt
from repro.stream.shard import _shm


def _snapshot(engine) -> dict:
    """The worker's full resumable state (shard-shaped)."""
    state = {
        "detector": engine.detector.state_dict(),
        "mitigator": (
            None if engine.mitigator is None else engine.mitigator.state_dict()
        ),
    }
    return state


def _build_engine(payload: dict):
    """Construct the shard-local engine from an init payload.

    Two entry shapes:

    * ``kind="full"`` — fleet-wide state plus this shard's member list;
      the worker builds the *full* pipeline, loads the full state, and
      drops the complement.  Reusing the engine-level elastic-fleet path
      guarantees the survivors' state is bit-identical to the fleet's.
    * ``kind="shard"`` — shard-shaped state (respawn, checkpoint
      restore); the worker builds at local size and loads directly.
    """
    meta = payload["meta"]
    weights = payload["weights"]
    if "shm" in weights:
        tensors = _shm.read_weights(weights["shm"])
    else:
        tensors = weights["raw"]
    autoencoder = ckpt.build_autoencoder(meta, tensors)
    detector, mitigator = ckpt.build_pipeline(
        meta, autoencoder, n_stations=int(payload["n_stations"])
    )
    detector.load_state_dict(payload["state"]["detector"])
    if mitigator is not None:
        mitigator.load_state_dict(payload["state"]["mitigator"])
    # StreamCheckpoint.engine() preserves the restored fallback instead
    # of letting the constructor re-derive it from the restored bounds.
    engine = ckpt.StreamCheckpoint(
        detector=detector,
        mitigator=mitigator,
        feedback=bool(payload["feedback"]),
        extra={},
        library={},
    ).engine()
    if payload["kind"] == "full":
        complement = payload["complement"]
        if complement.size:
            engine.drop_stations(complement)
    return engine


def worker_main(conn) -> None:
    """Serve shard commands until ``stop`` or a closed pipe."""
    engine = None
    try:
        op, payload = conn.recv()
        if op != "init":
            raise RuntimeError(f"worker expected init, got {op!r}")
        engine = _build_engine(payload)
        conn.send(("ready", _snapshot(engine) if payload["snapshot"] else None))
    except EOFError:
        return
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except (OSError, BrokenPipeError):
            pass
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        op = msg[0]
        try:
            if op == "block":
                reply = engine.step_block(msg[1])
            elif op == "tick":
                reply = engine.step_tick(msg[1])
            elif op == "add":
                _, n_new, thresholds, data_min, data_max = msg
                engine.add_stations(
                    n_new, thresholds=thresholds, data_min=data_min, data_max=data_max
                )
                reply = None
            elif op == "drop":
                engine.drop_stations(msg[1])
                reply = None
            elif op == "state":
                reply = _snapshot(engine)
            elif op == "stop":
                conn.send(("ok", None))
                return
            else:
                raise RuntimeError(f"unknown shard command {op!r}")
        except Exception:
            try:
                conn.send(("err", traceback.format_exc()))
            except (OSError, BrokenPipeError):
                return
            continue
        try:
            conn.send(("ok", reply))
        except (OSError, BrokenPipeError):
            return
