"""Publish read-only autoencoder weights once via shared memory.

Every shard worker needs the same trained weights.  Pickling them down
N pipes costs N copies in flight (and N times the serialization work);
instead the parent packs all weight tensors into one
:class:`multiprocessing.shared_memory.SharedMemory` block and ships
only a tiny descriptor — workers map the block, copy the tensors into
their model variables at init, and detach.  The parent unlinks the
block as soon as every worker has reported ready, so its lifetime is
the spawn window, not the run.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np


def publish_weights(
    weights: list[np.ndarray],
) -> tuple[shared_memory.SharedMemory, dict]:
    """Pack ``weights`` into one shared-memory block.

    Returns ``(shm, descriptor)``; the descriptor (name + per-tensor
    shape/dtype/offset) is cheap to pickle into each worker's init
    message.  The caller owns the block: ``close()`` + ``unlink()``
    once every consumer has attached and copied.
    """
    total = int(sum(w.nbytes for w in weights))
    # Zero-size blocks are invalid; a weightless model still needs a
    # valid descriptor to ship.
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    specs = []
    offset = 0
    for w in weights:
        w = np.ascontiguousarray(w)
        view = np.ndarray(w.shape, dtype=w.dtype, buffer=shm.buf, offset=offset)
        view[...] = w
        specs.append({"shape": list(w.shape), "dtype": w.dtype.str, "offset": offset})
        offset += w.nbytes
    return shm, {"name": shm.name, "specs": specs}


def read_weights(descriptor: dict) -> list[np.ndarray]:
    """Copy the published weights out of shared memory (worker side).

    Returns independent arrays — the segment can vanish (parent unlink)
    the moment this returns.  The attachment is untracked where the
    interpreter allows (``track=False``, 3.13+): the worker never owns
    the block.  On older Pythons the attach re-registers the name
    (bpo-39959) — harmlessly, because CPython shares one resource
    tracker across the process tree, so the registration set-adds a
    name the parent already registered and the parent's ``unlink()``
    retires it exactly once.  Workers must *not* unregister here: with
    the shared tracker, N workers unregistering one name races into
    KeyError noise and strips the parent's legitimate registration.
    """
    try:
        shm = shared_memory.SharedMemory(name=descriptor["name"], track=False)
    except TypeError:  # Python < 3.13: no track flag
        shm = shared_memory.SharedMemory(name=descriptor["name"])
    try:
        weights = []
        for spec in descriptor["specs"]:
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=shm.buf,
                offset=int(spec["offset"]),
            )
            weights.append(view.copy())
    finally:
        shm.close()
    return weights
