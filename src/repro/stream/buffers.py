"""Fixed-size per-station history buffers for online inference.

The batch pipeline re-windows the full series on every call; the
streaming engine instead keeps, for every station, exactly the last
``length`` readings — the autoencoder's context window — in a single
``(n_stations, 2·length)`` array.  Each push writes a value twice
(at the ring position and mirrored ``length`` columns later), so the
most-recent window of *any* station is always one contiguous slice of
the doubled row.  Per tick this is O(n_stations) writes and zero
reallocation: bounded state, no matter how long the stream runs.

Block mode (:meth:`RingBufferBank.push_block`) ingests ``B`` consecutive
readings per station in one shot; combined with :meth:`recent` a caller
can assemble every window a block completes as a strided view over
``history-tail ‖ block`` with no per-tick Python at all (see
:meth:`~repro.stream.detector.StreamingDetector.process_block`).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.markers import hot_path
from repro.stream._state import StateDict, check_keys, take
from repro.stream._ticks import check_block, check_drop, check_tick


class RingBufferBank:
    """Ring buffers for a fleet of stations, vectorized as one array.

    Parameters
    ----------
    n_stations:
        Number of independent series tracked.
    length:
        Window length kept per station (the detector's
        ``sequence_length``).

    Stations may tick independently: :meth:`push` accepts an optional
    index array, and :attr:`ready` reports which stations have
    accumulated a full window yet.
    """

    def __init__(self, n_stations: int, length: int) -> None:
        if n_stations < 1:
            raise ValueError(f"n_stations must be >= 1, got {n_stations}")
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        self.n_stations = int(n_stations)
        self.length = int(length)
        # Doubled storage: value at ring slot i is mirrored at i + length,
        # making every wrap-around window a contiguous slice.
        self._data = np.zeros((self.n_stations, 2 * self.length), dtype=np.float64)
        self._write = np.zeros(self.n_stations, dtype=np.int64)
        self.counts = np.zeros(self.n_stations, dtype=np.int64)

    @property
    def ready(self) -> np.ndarray:
        """Boolean mask of stations holding a full window."""
        return self.counts >= self.length

    def push(self, values: np.ndarray, stations: np.ndarray | None = None) -> None:
        """Append one reading per station (all stations, or ``stations``).

        ``values`` must be 1-D with one entry per addressed station, in
        the same order as ``stations`` (or station order when omitted).
        """
        values, stations = check_tick(values, stations, self.n_stations)
        self.push_checked(values, stations)

    @hot_path
    def push_checked(self, values: np.ndarray, stations: np.ndarray) -> None:
        """:meth:`push` for pre-validated ``(values, stations)`` arrays."""
        write = self._write[stations]
        self._data[stations, write] = values
        self._data[stations, write + self.length] = values
        self._write[stations] = (write + 1) % self.length
        self.counts[stations] += 1

    def push_block(self, values: np.ndarray, stations: np.ndarray | None = None) -> None:
        """Append ``B`` consecutive readings per station in one call.

        ``values`` is ``(k, B)``, oldest column first — exactly ``B``
        sequential :meth:`push` calls collapsed into one vectorized
        scatter (each value still mirrored into the doubled half).
        """
        values, stations = check_block(values, stations, self.n_stations)
        self.push_block_checked(values, stations)

    @hot_path
    def push_block_checked(self, values: np.ndarray, stations: np.ndarray) -> None:
        """:meth:`push_block` for pre-validated arrays."""
        block = values.shape[1]
        # A block longer than the ring overwrites its own head; write only
        # the surviving tail so every target slot is scattered exactly once.
        effective = min(block, self.length)
        skip = block - effective
        write = (self._write[stations] + skip) % self.length
        columns = (write[:, None] + np.arange(effective)[None, :]) % self.length
        self._data[stations[:, None], columns] = values[:, skip:]
        self._data[stations[:, None], columns + self.length] = values[:, skip:]
        self._write[stations] = (self._write[stations] + block) % self.length
        self.counts[stations] += block

    @hot_path
    def windows(self, stations: np.ndarray | None = None) -> np.ndarray:
        """Last ``length`` readings per station, oldest first, ``(k, L)``.

        Every addressed station must be :attr:`ready`.
        """
        if stations is None:
            stations = np.arange(self.n_stations)
        else:
            stations = np.asarray(stations, dtype=np.int64)
        if not np.all(self.counts[stations] >= self.length):
            raise ValueError("windows() requires a full buffer for every station")
        # After a push at slot w the write pointer is w+1, so the window
        # oldest→newest occupies doubled columns [write, write + length).
        columns = self._write[stations, None] + np.arange(self.length)[None, :]
        return self._data[stations[:, None], columns]

    def recent(self, m: int, stations: np.ndarray | None = None) -> np.ndarray:
        """Last ``m <= length`` buffered readings per station, ``(k, m)``.

        Unlike :meth:`windows` this never raises on a warming-up station:
        slots that were never written read as 0.0 and the caller masks
        them out via :attr:`counts`.  This is the history tail that block
        scoring prepends to an incoming block so every window the block
        completes is a contiguous slice of one ``(k, m + B)`` array.
        """
        if not 0 <= m <= self.length:
            raise ValueError(f"recent() needs 0 <= m <= {self.length}, got {m}")
        if stations is None:
            stations = np.arange(self.n_stations)
        else:
            stations = np.asarray(stations, dtype=np.int64)
        if m == 0:
            return np.empty((len(stations), 0), dtype=np.float64)
        # The last `length` readings sit in doubled columns
        # [write, write + length); the last m are the tail of that slice.
        columns = (
            self._write[stations, None] + (self.length - m) + np.arange(m)[None, :]
        )
        return self._data[stations[:, None], columns]

    def amend_last(self, values: np.ndarray, stations: np.ndarray | None = None) -> None:
        """Overwrite the most recent reading per addressed station.

        Used for closed-loop mitigation: replacing a flagged reading
        with its repaired value stops one corrupted tick from polluting
        the next ``length`` windows.  Stations must have pushed at least
        once.
        """
        values, stations = check_tick(values, stations, self.n_stations)
        if not np.all(self.counts[stations] >= 1):
            raise ValueError("amend_last() requires at least one prior push")
        newest = (self._write[stations] - 1) % self.length
        self._data[stations, newest] = values
        self._data[stations, newest + self.length] = values

    def amend_block(self, values: np.ndarray, stations: np.ndarray | None = None) -> None:
        """Overwrite the most recent ``B`` readings per addressed station.

        Block-mode counterpart of :meth:`amend_last`: after a block of
        ``B`` pushes, rewrite those same ``B`` slots with repaired
        values (columns past ``length`` history are silently clipped to
        the ``length`` the ring still remembers).  ``B = 1`` is exactly
        :meth:`amend_last`.
        """
        values, stations = check_block(values, stations, self.n_stations)
        self.amend_block_checked(values, stations)

    @hot_path
    def amend_block_checked(
        self,
        values: np.ndarray,
        stations: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """:meth:`amend_block` for pre-validated arrays.

        ``mask`` (same shape as ``values``, optional) restricts the
        rewrite to selected entries — the closed loop passes the flag
        matrix so clean readings keep their originally-buffered values
        instead of being re-scaled under end-of-block bounds.
        """
        block = values.shape[1]
        if not np.all(self.counts[stations] >= min(block, self.length)):
            raise ValueError("amend_block() requires the block to have been pushed")
        if block > self.length:
            # Only the newest `length` readings still exist in the ring.
            values = values[:, block - self.length :]
            if mask is not None:
                mask = mask[:, block - self.length :]
            block = self.length
        columns = (
            self._write[stations, None] - block + np.arange(block)[None, :]
        ) % self.length
        if mask is None:
            self._data[stations[:, None], columns] = values
            self._data[stations[:, None], columns + self.length] = values
        else:
            rows, cols = np.nonzero(mask)
            targets = columns[rows, cols]
            self._data[stations[rows], targets] = values[rows, cols]
            self._data[stations[rows], targets + self.length] = values[rows, cols]

    def last(self, stations: np.ndarray | None = None) -> np.ndarray:
        """Most recent reading per addressed station (0.0 before any push)."""
        if stations is None:
            stations = np.arange(self.n_stations)
        else:
            stations = np.asarray(stations, dtype=np.int64)
        newest = (self._write[stations] - 1) % self.length
        return self._data[stations, newest]

    # ------------------------------------------------------------------
    # operations: serialization and elastic fleets
    # ------------------------------------------------------------------
    #: state_dict entry names — parents embedding this bank build their
    #: expected-key sets from this instead of calling state_dict().
    STATE_KEYS = ("data", "write", "counts")

    def state_dict(self) -> StateDict:
        """Runtime state as a flat dict of arrays (bit-exact resume)."""
        return {
            "data": self._data.copy(),
            "write": self._write.copy(),
            "counts": self.counts.copy(),
        }

    def load_state_dict(self, state: StateDict) -> None:
        """Restore state captured by :meth:`state_dict` (strictly validated)."""
        owner = type(self).__name__
        check_keys(state, set(self.STATE_KEYS), owner)
        data = take(state, "data", owner, (self.n_stations, 2 * self.length), np.float64)
        write = take(state, "write", owner, (self.n_stations,), np.int64)
        counts = take(state, "counts", owner, (self.n_stations,), np.int64)
        self._data = data
        self._write = write
        self.counts = counts

    def add_stations(self, n_new: int) -> None:
        """Grow the fleet by ``n_new`` empty (warming-up) buffers."""
        if n_new < 1:
            raise ValueError(f"n_new must be >= 1, got {n_new}")
        self.n_stations += int(n_new)
        self._data = np.concatenate(
            [self._data, np.zeros((n_new, 2 * self.length), dtype=np.float64)]
        )
        self._write = np.concatenate([self._write, np.zeros(n_new, dtype=np.int64)])
        self.counts = np.concatenate([self.counts, np.zeros(n_new, dtype=np.int64)])

    def drop_stations(self, stations: np.ndarray) -> None:
        """Remove stations; survivors keep their buffers, renumbered compactly."""
        stations = check_drop(stations, self.n_stations)
        self._data = np.delete(self._data, stations, axis=0)
        self._write = np.delete(self._write, stations)
        self.counts = np.delete(self.counts, stations)
        self.n_stations -= len(stations)

    def __repr__(self) -> str:
        return (
            f"RingBufferBank(n_stations={self.n_stations}, length={self.length}, "
            f"ready={int(self.ready.sum())})"
        )
