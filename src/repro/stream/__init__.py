"""Online streaming detection & mitigation for fleet-scale telemetry.

The batch pipeline (:mod:`repro.anomaly`) re-windows and re-scores a
full series on every call — fine for reproducing the paper's tables,
useless for a live federated deployment ingesting readings from
thousands of charging stations.  This package is the online serving
path: per-station ring buffers hold exactly one autoencoder window of
history (:mod:`~repro.stream.buffers`), scaling is incremental and
per-station (:mod:`~repro.stream.scaler`), thresholds can adapt via the
O(1)-memory P² percentile sketch (:mod:`~repro.stream.quantile`),
inference is *micro-batched* — one LSTM forward pass per tick for the
whole fleet, not one per station (:mod:`~repro.stream.detector`) — and
mitigation is causal, built only from the past
(:mod:`~repro.stream.mitigation`).  :mod:`~repro.stream.engine` replays
any batch attack scenario through the pipeline and reports throughput,
latency, and the paper's detection metrics.

Block mode batches the *time* axis as well:
:meth:`StreamingDetector.process_block` ingests ``(n_stations, B)``
readings and scores every window the block completes in one inference
pass, and ``engine.run(fleet, block_size=B)`` drives the whole closed
loop block-wise (``block_size=1`` is bit-identical to tick-by-tick;
larger blocks move mitigation feedback and adaptive-threshold updates
to block granularity).

Operations: the pipeline checkpoints to a single ``.npz`` with
bit-exact resume (:mod:`~repro.stream.checkpoint`), fleets grow and
shrink at runtime (``add_stations``/``drop_stations`` on the detector,
engine and every state bank), and NaN readings can be accepted as
missing data (``StreamingDetector(..., missing="impute")``) — imputed
causally, excluded from scaler/threshold adaptation, and counted
per-station in the report.  For fleets larger than one process,
:mod:`repro.stream.shard` runs the same pipeline as N shard-local
worker processes behind one engine facade — bit-exact against the
single-engine path, with per-shard manifest checkpoints and worker
failover.

Quickstart::

    from repro.stream import (
        StreamingDetector, StreamingMinMaxScaler, StreamReplayEngine,
        attack_fleet,
    )

    detector = StreamingDetector(trained_autoencoder, n_stations,
                                 scaler=fleet_scaler)
    detector.calibrate(normal_history)          # per-station 98th pct
    engine = StreamReplayEngine(detector, mitigator="hold_last_good")
    report = engine.run(*attack_fleet(clients, scenario, seed=7)[:2])
    print(report.summary())
"""

from repro.stream.buffers import RingBufferBank
from repro.stream.checkpoint import (
    CheckpointError,
    StreamCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.detector import BlockResult, StreamingDetector, TickResult
from repro.stream.engine import (
    ReplayDriver,
    StreamInterrupted,
    StreamReplayEngine,
    StreamReport,
    attack_fleet,
    create_engine,
    synthesize_fleet,
)
from repro.stream.mitigation import (
    CausalLinearMitigator,
    HoldLastGoodMitigator,
    SeasonalHoldMitigator,
    StreamingMitigator,
)
from repro.stream.quantile import (
    P2QuantileBank,
    P2QuantileEstimator,
    StreamingPercentileThreshold,
)
from repro.stream.scaler import StreamingMinMaxScaler

__all__ = [
    "RingBufferBank",
    "CheckpointError",
    "StreamCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "BlockResult",
    "StreamingDetector",
    "TickResult",
    "ReplayDriver",
    "StreamInterrupted",
    "StreamReplayEngine",
    "StreamReport",
    "attack_fleet",
    "create_engine",
    "synthesize_fleet",
    "CausalLinearMitigator",
    "HoldLastGoodMitigator",
    "SeasonalHoldMitigator",
    "StreamingMitigator",
    "P2QuantileBank",
    "P2QuantileEstimator",
    "StreamingPercentileThreshold",
    "StreamingMinMaxScaler",
]
