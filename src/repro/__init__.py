"""repro — reproduction of "Federated Anomaly Detection and Mitigation
for EV Charging Forecasting Under Cyberattacks" (Babayomi & Kim).

A from-scratch, numpy-only implementation of the paper's complete
system and every substrate it depends on:

- :mod:`repro.nn` — a pure-numpy deep-learning framework (LSTM with
  hand-derived BPTT, Dense, Dropout, RepeatVector, TimeDistributed,
  Adam/SGD/RMSProp, early stopping, serialization).
- :mod:`repro.data` — synthetic Shenzhen-like EV charging data for the
  paper's three traffic zones plus the preprocessing pipeline
  (per-client MinMax scaling, temporal 80/20 split, 24 h windows).
- :mod:`repro.attacks` — the DDoS traffic model (33,000 → 350,500 p/s,
  100 ms slots) translated into volume-spike injection, plus FDI and
  temporal-disruption extensions.
- :mod:`repro.anomaly` — the ``EVChargingAnomalyFilter``: LSTM
  autoencoder detection (98th-percentile threshold) and
  interpolation-based mitigation.
- :mod:`repro.federated` — FedAvg client/server simulation with
  robust-aggregation alternatives and communication accounting.
- :mod:`repro.forecasting` — the LSTM(50)→Dense(10,relu)→Dense(1)
  forecaster in federated and centralized pipelines.
- :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation (Tables I–III, Figs. 2–3, headline metrics).
- :mod:`repro.stream` — the online serving path: per-station ring
  buffers, incremental MinMax scaling, P² streaming percentiles, a
  micro-batched :class:`~repro.stream.detector.StreamingDetector`
  (one LSTM forward per tick for the whole fleet), causal mitigation,
  and a replay engine with throughput/latency/detection reporting.
- :mod:`repro.serve` — the live ingestion layer: a framed, CRC-checked
  wire protocol, an asyncio :class:`~repro.serve.server.IngestionServer`
  (reorder buffer with lateness watermark, dedup, bounded-queue
  backpressure, SIGTERM checkpointing with bit-exact crash recovery)
  and a retrying :class:`~repro.serve.client.IngestClient` with a
  chaos-injection transport for fault soak tests.
- :mod:`repro.obs` — opt-in runtime observability: counters, gauges,
  latency histograms and stage spans threaded through the streaming,
  training and federated paths, with Prometheus text exposition and
  JSONL snapshot export (enable via ``repro.obs.enable()`` or
  ``REPRO_OBS=1``; zero-cost no-ops when off).

Quickstart::

    from repro.experiments import ExperimentConfig, get_or_run, full_report
    result = get_or_run(ExperimentConfig.fast())
    print(full_report(result))

Streaming quickstart (online detection across a fleet)::

    from repro.stream import StreamingDetector, StreamReplayEngine, attack_fleet

    detector = StreamingDetector(trained_autoencoder, n_stations, scaler=scaler)
    detector.calibrate(normal_history)              # per-station 98th pct
    engine = StreamReplayEngine(detector, mitigator="hold_last_good")
    attacked, labels, names = attack_fleet(clients, scenario, seed=7)
    print(engine.run(attacked, labels, names).summary())
"""

from repro import (
    anomaly,
    attacks,
    data,
    experiments,
    federated,
    forecasting,
    nn,
    obs,
    serve,
    stream,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "anomaly",
    "attacks",
    "data",
    "experiments",
    "federated",
    "forecasting",
    "nn",
    "obs",
    "serve",
    "stream",
    "utils",
    "__version__",
]
