"""Client SDK: fault-tolerant delivery into the ingestion server.

Delivery contract: :meth:`IngestClient.send` files a reading and
:meth:`IngestClient.drain` returns once every filed reading reached a
*terminal* ack — ``OK`` (delivered), ``DUPLICATE`` (a previous copy
already landed), or ``LATE`` (past the watermark; the server served
that slot as missing).  Everything between is the client's problem and
handled automatically:

* **Idempotent resend by seq.**  Readings are retransmitted verbatim
  until terminally acked; the server dedups by ``(station, seq)``, so
  lost frames, lost acks, and chaos duplicates all converge.
* **Jittered exponential backoff.**  Retry ``k`` waits
  ``min(backoff_max, backoff_base * backoff_factor**k)`` scaled by a
  seeded uniform jitter in ``[0.5, 1.0)`` — no thundering herd.  BUSY
  acks (backpressure) reschedule the frame the same way without
  consuming a retry attempt.
* **Reconnect.**  A broken connection (reset, BYE, structural protocol
  desync) is re-dialed with the same backoff schedule and a fresh
  HELLO; unacked frames are marked due immediately after the handshake.
* **Timeouts.**  ``connect_timeout`` bounds dial+handshake;
  ``read_timeout`` is the poll granularity of the pump loop.

The client is deliberately single-task: no background reader, no locks
— :meth:`send`/:meth:`drain` pump I/O inline, so tests and the chaos
soak get deterministic interleavings.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.serve.protocol import (
    MAX_BATCH_RECORDS,
    PROTOCOL_VERSIONS,
    SEQ_MOD,
    FrameDecoder,
    FrameType,
    AckStatus,
    ProtocolError,
    encode_frame,
    pack_add_stations,
    pack_batch_data,
    pack_data,
    pack_drop_stations,
    pack_hello,
    sign_control_token,
    sign_token,
    unpack_ack,
    unpack_batch_ack,
    unpack_busy,
    unpack_control_ack,
    unpack_welcome,
)


class DeliveryError(RuntimeError):
    """A reading exhausted its retry budget without a terminal ack."""


class ControlError(RuntimeError):
    """A control-plane op failed, was refused, or lost its connection.

    Control ops are not idempotent, so unlike data frames they are
    never retried automatically — the caller decides what a safe retry
    looks like for its fleet.
    """


class TcpTransport:
    """Thin asyncio TCP wrapper: connect, send bytes, read chunks."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @property
    def closed(self) -> bool:
        return self._writer is None or self._writer.is_closing()

    async def connect(self, timeout: float = 5.0) -> None:
        self.close()
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout
        )

    def send(self, frame: bytes) -> None:
        if self.closed:
            raise ConnectionError("transport is closed")
        self._writer.write(frame)

    async def drain(self) -> None:
        if not self.closed:
            await self._writer.drain()

    async def read(self, timeout: float) -> bytes:
        """One chunk off the socket; ``b""`` on poll timeout, raises on EOF."""
        if self._reader is None:
            raise ConnectionError("transport is closed")
        try:
            chunk = await asyncio.wait_for(self._reader.read(4096), timeout)
        except asyncio.TimeoutError:
            return b""
        if not chunk:
            raise ConnectionError("server closed the connection")
        return chunk

    def close(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
        self._reader = None
        self._writer = None


class _PendingSend:
    __slots__ = ("station", "seq", "timestamp", "reading", "attempts", "due", "_frame")

    def __init__(
        self, station: int, seq: int, timestamp: float, reading: float, due: float
    ) -> None:
        self.station = station
        self.seq = seq
        self.timestamp = timestamp
        self.reading = reading
        self.attempts = 0
        self.due = due
        self._frame: bytes | None = None

    @property
    def frame(self) -> bytes:
        """The v1 DATA frame for this reading, built once on first use.

        On a v2 session the pump usually coalesces due readings into
        BATCH_DATA frames instead, so the scalar frame is lazy.
        """
        if self._frame is None:
            self._frame = pack_data(self.station, self.seq, self.timestamp, self.reading)
        return self._frame


class IngestClient:
    """Deliver readings reliably over a (possibly chaotic) transport.

    ``transport`` accepts any object with the :class:`TcpTransport`
    interface — pass a :class:`~repro.serve.chaos.ChaosTransport` to
    inject faults between this client and the server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        client_id: str = "client",
        token: str = "",
        secret: str | None = None,
        transport=None,
        max_attempts: int = 12,
        backoff_base: float = 0.02,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.5,
        connect_timeout: float = 5.0,
        read_timeout: float = 0.02,
        seed: int = 0,
        versions: tuple[int, ...] = PROTOCOL_VERSIONS,
    ) -> None:
        self.client_id = client_id
        # A shared secret outranks an explicit token: the credential is
        # derived per client id, matching IngestionServer(auth_secret=...).
        self.token = sign_token(secret, client_id) if secret is not None else token
        #: Control-plane credential (HMAC, distinct from the HELLO one).
        self.control_token = (
            sign_control_token(secret, client_id) if secret is not None else token
        )
        #: Protocol versions this client offers in HELLO; ``(1,)`` pins
        #: a byte-for-byte v1 session against any server.
        self.versions = tuple(sorted(int(v) for v in versions))
        self.transport = transport if transport is not None else TcpTransport(host, port)
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._rng = np.random.default_rng(seed)
        self._decoder = FrameDecoder()
        self._unacked: dict[tuple[int, int], _PendingSend] = {}
        #: Terminal ack per ``(station, seq)`` — the soak test's ground
        #: truth for which readings were effectively delivered.
        self.ack_log: dict[tuple[int, int], AckStatus] = {}
        self.max_inflight = 64
        self.busy_count = 0
        self.reconnect_count = 0
        self.retransmits = 0
        self._connected = False
        #: Negotiated per session (WELCOME); 1 until connected.
        self.protocol_version = 1
        #: Per-frame batch budget the server announced (v2 sessions).
        self.max_batch = MAX_BATCH_RECORDS
        self._control_cid = 0
        self._control_acks: dict[int, dict] = {}

    async def __aenter__(self) -> "IngestClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.close()
        return False

    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)
        return delay * (0.5 + 0.5 * float(self._rng.random()))

    async def connect(self) -> None:
        """Dial + HELLO/WELCOME, with backoff across attempts."""
        failures = 0
        while True:
            try:
                await self.transport.connect(self.connect_timeout)
                self._decoder = FrameDecoder()
                self.transport.send(
                    pack_hello(self.client_id, self.token, versions=self.versions)
                )
                await self.transport.drain()
                deadline = time.perf_counter() + self.connect_timeout
                while True:
                    chunk = await self.transport.read(self.read_timeout)
                    for ftype, body in self._decoder.feed(chunk):
                        if ftype is FrameType.WELCOME:
                            welcome = unpack_welcome(body)
                            self.max_inflight = int(welcome["max_inflight"])
                            # A WELCOME without a version is a v1 server.
                            self.protocol_version = int(welcome.get("version", 1))
                            self.max_batch = int(
                                welcome.get("max_batch", MAX_BATCH_RECORDS)
                            )
                            self._connected = True
                            return
                        if ftype is FrameType.ERROR:
                            raise ConnectionError(
                                f"server refused HELLO: {body.decode(errors='replace')}"
                            )
                    if time.perf_counter() > deadline:
                        raise ConnectionError("timed out waiting for WELCOME")
            except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError):
                self.transport.close()
                failures += 1
                if failures > self.max_attempts:
                    raise
                await asyncio.sleep(self._backoff(failures - 1))

    async def _reconnect(self) -> None:
        self.reconnect_count += 1
        self._connected = False
        await self.connect()
        now = time.perf_counter()
        for pending in self._unacked.values():
            pending.due = now  # resend everything unacked on the new session

    # ------------------------------------------------------------------

    async def send(
        self, station: int, seq: int, reading: float, timestamp: float | None = None
    ) -> None:
        """File one reading for delivery (returns before it is acked)."""
        key = (station, seq % SEQ_MOD)
        if key in self.ack_log or key in self._unacked:
            return  # idempotent: already terminal or already queued
        # The wire timestamp is the payload, not hidden state.
        stamp = time.time() if timestamp is None else timestamp  # reprolint: disable=RPR004
        self._unacked[key] = _PendingSend(
            station, key[1], stamp, reading, time.perf_counter()
        )
        await self._pump()
        while len(self._unacked) >= self.max_inflight:
            await self._pump()

    async def send_block(
        self,
        stations,
        seqs,
        readings,
        timestamps=None,
    ) -> None:
        """File a block of readings, shipped as BATCH_DATA frames (v2).

        ``stations`` must be 1-D; ``seqs``/``readings``/``timestamps``
        broadcast against it (the common call sends one tick: all
        stations, one seq).  Filing happens in chunks small enough to
        respect the server's inflight quota and per-frame batch budget;
        like :meth:`send`, already-filed or already-acked readings are
        skipped (idempotent).  On a v1 session the readings simply go
        out as per-reading DATA frames — same delivery contract.
        """
        stations = np.asarray(stations, dtype=np.int64)
        if stations.ndim != 1:
            raise ValueError("stations must be 1-D")
        n = stations.size
        seqs = np.broadcast_to(np.asarray(seqs, dtype=np.int64), stations.shape)
        readings = np.broadcast_to(np.asarray(readings, dtype=np.float64), stations.shape)
        if timestamps is None:
            timestamps = time.time()  # reprolint: disable=RPR004 — wire payload
        timestamps = np.broadcast_to(
            np.asarray(timestamps, dtype=np.float64), stations.shape
        )
        chunk = max(1, min(self.max_batch, self.max_inflight))
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            # Keep total unacked within the server's quota so a whole
            # chunk can be admitted in one BATCH_DATA frame.
            while len(self._unacked) + (stop - start) > self.max_inflight:
                await self._pump()
            now = time.perf_counter()
            for i in range(start, stop):
                key = (int(stations[i]), int(seqs[i]) % SEQ_MOD)
                if key in self.ack_log or key in self._unacked:
                    continue
                self._unacked[key] = _PendingSend(
                    key[0], key[1], float(timestamps[i]), float(readings[i]), now
                )
            await self._pump()

    async def drain(self, timeout: float = 30.0) -> None:
        """Pump until every filed reading has a terminal ack."""
        deadline = time.perf_counter() + timeout
        while self._unacked:
            await self._pump()
            if time.perf_counter() > deadline:
                stuck = sorted(self._unacked)[:5]
                raise TimeoutError(
                    f"{len(self._unacked)} reading(s) still unacked after "
                    f"{timeout}s (e.g. {stuck})"
                )

    async def close(self) -> None:
        if self._connected and not self.transport.closed:
            try:
                self.transport.send(encode_frame(FrameType.BYE))
                await self.transport.drain()
            except (ConnectionError, OSError):
                pass
        self.transport.close()
        self._connected = False

    # ------------------------------------------------------------------

    async def _pump(self) -> None:
        """One I/O round: reconnect if needed, retransmit due, read acks."""
        if not self._connected or self.transport.closed:
            await self._reconnect()
        try:
            now = time.perf_counter()
            due: list[_PendingSend] = []
            for pending in list(self._unacked.values()):
                if pending.due > now:
                    continue
                if pending.attempts >= self.max_attempts:
                    raise DeliveryError(
                        f"reading (station={pending.station}, seq={pending.seq}) "
                        f"got no terminal ack after {pending.attempts} attempts"
                    )
                due.append(pending)
            if self.protocol_version >= 2 and len(due) > 1:
                # Coalesce everything due into BATCH_DATA frames — one
                # frame, one CRC, one vectorized ack for the lot.  This
                # covers fresh send_block chunks *and* retransmits.
                chunk = max(1, min(self.max_batch, self.max_inflight))
                for start in range(0, len(due), chunk):
                    group = due[start : start + chunk]
                    self.transport.send(
                        pack_batch_data(
                            np.asarray([p.station for p in group], dtype=np.int64),
                            np.asarray([p.seq for p in group], dtype=np.int64),
                            np.asarray([p.timestamp for p in group], dtype=np.float64),
                            np.asarray([p.reading for p in group], dtype=np.float64),
                        )
                    )
                    for pending in group:
                        if pending.attempts:
                            self.retransmits += 1
                        pending.attempts += 1
                        pending.due = now + self._backoff(pending.attempts)
            else:
                for pending in due:
                    self.transport.send(pending.frame)
                    if pending.attempts:
                        self.retransmits += 1
                    pending.attempts += 1
                    pending.due = now + self._backoff(pending.attempts)
            await self.transport.drain()
            chunk = await self.transport.read(self.read_timeout)
            for ftype, body in self._decoder.feed(chunk):
                self._on_frame(ftype, body)
        except (ConnectionError, OSError, ProtocolError, asyncio.IncompleteReadError):
            self.transport.close()
            self._connected = False  # next pump re-dials and resends

    def _on_frame(self, ftype: FrameType, body: bytes) -> None:
        if ftype is FrameType.ACK:
            station, seq, status = unpack_ack(body)
            key = (station, seq)
            self._unacked.pop(key, None)
            self.ack_log.setdefault(key, status)
        elif ftype is FrameType.BATCH_ACK:
            stations, seqs, statuses = unpack_batch_ack(body)
            now = time.perf_counter()
            for station, seq, status in zip(
                stations.tolist(), seqs.tolist(), statuses.tolist(), strict=True
            ):
                if status == AckStatus.BUSY:
                    self.busy_count += 1
                    pending = self._unacked.get((station, seq))
                    if pending is not None:
                        pending.due = now + self._backoff(max(1, pending.attempts))
                else:
                    key = (station, seq)
                    self._unacked.pop(key, None)
                    self.ack_log.setdefault(key, AckStatus(status))
        elif ftype is FrameType.BUSY:
            station, seq, retry_after = unpack_busy(body)
            self.busy_count += 1
            pending = self._unacked.get((station, seq))
            if pending is not None:
                # Backpressure costs backoff, not a retry attempt.  A
                # retry-after hint is the token bucket's actual refill
                # time; jitter only stretches it so a fleet of limited
                # clients does not return in lockstep.
                if retry_after is not None:
                    delay = retry_after * (1.0 + 0.5 * float(self._rng.random()))
                else:
                    delay = self._backoff(max(1, pending.attempts))
                pending.due = time.perf_counter() + delay
        elif ftype is FrameType.CONTROL_ACK:
            ack = unpack_control_ack(body)
            self._control_acks[int(ack.get("cid", 0))] = ack
        elif ftype is FrameType.BYE:
            raise ConnectionError("server said BYE")
        elif ftype is FrameType.ERROR:
            raise ConnectionError(f"server error: {body.decode(errors='replace')}")
        # CORRUPT or unexpected types: drop; retransmission recovers.

    # ------------------------------------------------------------------
    # control plane (v2)

    async def add_stations(
        self,
        n_new: int,
        *,
        thresholds=None,
        data_min=None,
        data_max=None,
        timeout: float = 30.0,
    ) -> int:
        """Grow the served fleet live; returns the new fleet width.

        Requires a v2 session and, on an authenticated server, the
        control credential derived from the shared ``secret``.  Mirrors
        :meth:`StreamReplayEngine.add_stations` — newcomers take the
        next station ids.
        """
        self._control_cid += 1
        cid = self._control_cid
        frame = pack_add_stations(
            n_new,
            thresholds=thresholds,
            data_min=data_min,
            data_max=data_max,
            token=self.control_token,
            cid=cid,
        )
        return await self._control(frame, cid, timeout)

    async def drop_stations(self, stations, *, timeout: float = 30.0) -> int:
        """Shrink the served fleet live; returns the new fleet width.

        Survivors renumber compactly (the engine's drop semantics) —
        wire station ids above the dropped ones shift down.
        """
        self._control_cid += 1
        cid = self._control_cid
        frame = pack_drop_stations(stations, token=self.control_token, cid=cid)
        return await self._control(frame, cid, timeout)

    async def _control(self, frame: bytes, cid: int, timeout: float) -> int:
        """Ship one control frame; pump until its CONTROL_ACK lands.

        No automatic retry: churn is not idempotent, so a connection
        loss mid-op raises :class:`ControlError` instead of re-dialing.
        """
        if not self._connected or self.transport.closed:
            await self._reconnect()
        if self.protocol_version < 2:
            raise ControlError(
                f"control plane requires protocol v2; session negotiated "
                f"v{self.protocol_version}"
            )
        deadline = time.perf_counter() + timeout
        try:
            self.transport.send(frame)
            await self.transport.drain()
            while True:
                ack = self._control_acks.pop(cid, None)
                if ack is not None:
                    if not ack.get("ok"):
                        raise ControlError(str(ack.get("error") or "control op refused"))
                    return int(ack.get("n_stations", -1))
                if time.perf_counter() > deadline:
                    raise ControlError(f"no CONTROL_ACK within {timeout}s")
                chunk = await self.transport.read(self.read_timeout)
                for ftype, body in self._decoder.feed(chunk):
                    self._on_frame(ftype, body)
        except (ConnectionError, OSError, ProtocolError, asyncio.IncompleteReadError) as exc:
            self.transport.close()
            self._connected = False
            raise ControlError(f"connection lost awaiting CONTROL_ACK: {exc}") from exc
