"""Client SDK: fault-tolerant delivery into the ingestion server.

Delivery contract: :meth:`IngestClient.send` files a reading and
:meth:`IngestClient.drain` returns once every filed reading reached a
*terminal* ack — ``OK`` (delivered), ``DUPLICATE`` (a previous copy
already landed), or ``LATE`` (past the watermark; the server served
that slot as missing).  Everything between is the client's problem and
handled automatically:

* **Idempotent resend by seq.**  Readings are retransmitted verbatim
  until terminally acked; the server dedups by ``(station, seq)``, so
  lost frames, lost acks, and chaos duplicates all converge.
* **Jittered exponential backoff.**  Retry ``k`` waits
  ``min(backoff_max, backoff_base * backoff_factor**k)`` scaled by a
  seeded uniform jitter in ``[0.5, 1.0)`` — no thundering herd.  BUSY
  acks (backpressure) reschedule the frame the same way without
  consuming a retry attempt.
* **Reconnect.**  A broken connection (reset, BYE, structural protocol
  desync) is re-dialed with the same backoff schedule and a fresh
  HELLO; unacked frames are marked due immediately after the handshake.
* **Timeouts.**  ``connect_timeout`` bounds dial+handshake;
  ``read_timeout`` is the poll granularity of the pump loop.

The client is deliberately single-task: no background reader, no locks
— :meth:`send`/:meth:`drain` pump I/O inline, so tests and the chaos
soak get deterministic interleavings.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.serve.protocol import (
    SEQ_MOD,
    FrameDecoder,
    FrameType,
    AckStatus,
    ProtocolError,
    encode_frame,
    pack_data,
    pack_hello,
    sign_token,
    unpack_ack,
    unpack_busy,
    unpack_welcome,
)


class DeliveryError(RuntimeError):
    """A reading exhausted its retry budget without a terminal ack."""


class TcpTransport:
    """Thin asyncio TCP wrapper: connect, send bytes, read chunks."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @property
    def closed(self) -> bool:
        return self._writer is None or self._writer.is_closing()

    async def connect(self, timeout: float = 5.0) -> None:
        self.close()
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout
        )

    def send(self, frame: bytes) -> None:
        if self.closed:
            raise ConnectionError("transport is closed")
        self._writer.write(frame)

    async def drain(self) -> None:
        if not self.closed:
            await self._writer.drain()

    async def read(self, timeout: float) -> bytes:
        """One chunk off the socket; ``b""`` on poll timeout, raises on EOF."""
        if self._reader is None:
            raise ConnectionError("transport is closed")
        try:
            chunk = await asyncio.wait_for(self._reader.read(4096), timeout)
        except asyncio.TimeoutError:
            return b""
        if not chunk:
            raise ConnectionError("server closed the connection")
        return chunk

    def close(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            self._writer.close()
        self._reader = None
        self._writer = None


class _PendingSend:
    __slots__ = ("frame", "station", "seq", "attempts", "due")

    def __init__(self, frame: bytes, station: int, seq: int, due: float) -> None:
        self.frame = frame
        self.station = station
        self.seq = seq
        self.attempts = 0
        self.due = due


class IngestClient:
    """Deliver readings reliably over a (possibly chaotic) transport.

    ``transport`` accepts any object with the :class:`TcpTransport`
    interface — pass a :class:`~repro.serve.chaos.ChaosTransport` to
    inject faults between this client and the server.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        client_id: str = "client",
        token: str = "",
        secret: str | None = None,
        transport=None,
        max_attempts: int = 12,
        backoff_base: float = 0.02,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.5,
        connect_timeout: float = 5.0,
        read_timeout: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.client_id = client_id
        # A shared secret outranks an explicit token: the credential is
        # derived per client id, matching IngestionServer(auth_secret=...).
        self.token = sign_token(secret, client_id) if secret is not None else token
        self.transport = transport if transport is not None else TcpTransport(host, port)
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self._rng = np.random.default_rng(seed)
        self._decoder = FrameDecoder()
        self._unacked: dict[tuple[int, int], _PendingSend] = {}
        #: Terminal ack per ``(station, seq)`` — the soak test's ground
        #: truth for which readings were effectively delivered.
        self.ack_log: dict[tuple[int, int], AckStatus] = {}
        self.max_inflight = 64
        self.busy_count = 0
        self.reconnect_count = 0
        self.retransmits = 0
        self._connected = False

    # ------------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        delay = min(self.backoff_max, self.backoff_base * self.backoff_factor**attempt)
        return delay * (0.5 + 0.5 * float(self._rng.random()))

    async def connect(self) -> None:
        """Dial + HELLO/WELCOME, with backoff across attempts."""
        failures = 0
        while True:
            try:
                await self.transport.connect(self.connect_timeout)
                self._decoder = FrameDecoder()
                self.transport.send(pack_hello(self.client_id, self.token))
                await self.transport.drain()
                deadline = time.perf_counter() + self.connect_timeout
                while True:
                    chunk = await self.transport.read(self.read_timeout)
                    for ftype, body in self._decoder.feed(chunk):
                        if ftype is FrameType.WELCOME:
                            self.max_inflight = int(unpack_welcome(body)["max_inflight"])
                            self._connected = True
                            return
                        if ftype is FrameType.ERROR:
                            raise ConnectionError(
                                f"server refused HELLO: {body.decode(errors='replace')}"
                            )
                    if time.perf_counter() > deadline:
                        raise ConnectionError("timed out waiting for WELCOME")
            except (ConnectionError, OSError, ProtocolError, asyncio.TimeoutError):
                self.transport.close()
                failures += 1
                if failures > self.max_attempts:
                    raise
                await asyncio.sleep(self._backoff(failures - 1))

    async def _reconnect(self) -> None:
        self.reconnect_count += 1
        self._connected = False
        await self.connect()
        now = time.perf_counter()
        for pending in self._unacked.values():
            pending.due = now  # resend everything unacked on the new session

    # ------------------------------------------------------------------

    async def send(
        self, station: int, seq: int, reading: float, timestamp: float | None = None
    ) -> None:
        """File one reading for delivery (returns before it is acked)."""
        key = (station, seq % SEQ_MOD)
        if key in self.ack_log or key in self._unacked:
            return  # idempotent: already terminal or already queued
        frame = pack_data(
            station,
            seq,
            # The wire timestamp is the payload, not hidden state.
            time.time() if timestamp is None else timestamp,  # reprolint: disable=RPR004
            reading,
        )
        self._unacked[key] = _PendingSend(frame, station, key[1], time.perf_counter())
        await self._pump()
        while len(self._unacked) >= self.max_inflight:
            await self._pump()

    async def drain(self, timeout: float = 30.0) -> None:
        """Pump until every filed reading has a terminal ack."""
        deadline = time.perf_counter() + timeout
        while self._unacked:
            await self._pump()
            if time.perf_counter() > deadline:
                stuck = sorted(self._unacked)[:5]
                raise TimeoutError(
                    f"{len(self._unacked)} reading(s) still unacked after "
                    f"{timeout}s (e.g. {stuck})"
                )

    async def close(self) -> None:
        if self._connected and not self.transport.closed:
            try:
                self.transport.send(encode_frame(FrameType.BYE))
                await self.transport.drain()
            except (ConnectionError, OSError):
                pass
        self.transport.close()
        self._connected = False

    # ------------------------------------------------------------------

    async def _pump(self) -> None:
        """One I/O round: reconnect if needed, retransmit due, read acks."""
        if not self._connected or self.transport.closed:
            await self._reconnect()
        try:
            now = time.perf_counter()
            for pending in list(self._unacked.values()):
                if pending.due > now:
                    continue
                if pending.attempts >= self.max_attempts:
                    raise DeliveryError(
                        f"reading (station={pending.station}, seq={pending.seq}) "
                        f"got no terminal ack after {pending.attempts} attempts"
                    )
                self.transport.send(pending.frame)
                if pending.attempts:
                    self.retransmits += 1
                pending.attempts += 1
                pending.due = now + self._backoff(pending.attempts)
            await self.transport.drain()
            chunk = await self.transport.read(self.read_timeout)
            for ftype, body in self._decoder.feed(chunk):
                self._on_frame(ftype, body)
        except (ConnectionError, OSError, ProtocolError, asyncio.IncompleteReadError):
            self.transport.close()
            self._connected = False  # next pump re-dials and resends

    def _on_frame(self, ftype: FrameType, body: bytes) -> None:
        if ftype is FrameType.ACK:
            station, seq, status = unpack_ack(body)
            key = (station, seq)
            self._unacked.pop(key, None)
            self.ack_log.setdefault(key, status)
        elif ftype is FrameType.BUSY:
            station, seq = unpack_busy(body)
            self.busy_count += 1
            pending = self._unacked.get((station, seq))
            if pending is not None:
                # Backpressure costs backoff, not a retry attempt.
                pending.due = time.perf_counter() + self._backoff(max(1, pending.attempts))
        elif ftype is FrameType.BYE:
            raise ConnectionError("server said BYE")
        elif ftype is FrameType.ERROR:
            raise ConnectionError(f"server error: {body.decode(errors='replace')}")
        # CORRUPT or unexpected types: drop; retransmission recovers.
