"""Framed wire protocol for the live ingestion service.

Every message on the wire is one *frame*::

    +-------+----------------+------+----------+-----------+
    | magic | length (u32 BE)| type | body ... | crc32 (BE)|
    +-------+----------------+------+----------+-----------+
      0x7E    len(type+body+crc)      length - 5 bytes

``length`` counts everything after the length field (type byte + body +
4-byte CRC), so a reader can always consume exactly one frame without
understanding its type.  The CRC-32 (:func:`zlib.crc32`) covers the type
byte and body.  Two distinct failure modes fall out of this layout:

* **Payload corruption** — magic and length are intact, the CRC check
  fails.  Framing survives: the reader stays synchronized and reports
  the damaged frame as :data:`FrameType.CORRUPT` (a sentinel that never
  appears on the wire) so the server can count it and simply *not ack*;
  the client's idempotent resend-by-seq delivers a clean copy.
* **Structural desync** — wrong magic byte or an absurd length.  The
  byte stream can no longer be trusted at all; the reader raises
  :class:`ProtocolError` and the connection must be torn down (the
  client reconnects and resends everything unacked).

Body formats (all big-endian):

========= ======================= ========================================
type      body                    meaning
========= ======================= ========================================
HELLO     UTF-8 JSON              ``{"client_id", "token"}`` auth stub
WELCOME   UTF-8 JSON              ``{"session", "max_inflight"}``
DATA      ``>IIdd``               station u32, seq u32, unix ts, reading
ACK       ``>IIB``                station, seq, :class:`AckStatus`
BUSY      ``>II``                 station, seq rejected — back off, retry
ERROR     UTF-8 text              fatal; server closes the connection
BYE       empty                   graceful close
========= ======================= ========================================

``seq`` is an unsigned 32-bit *tick index* that wraps at ``2**32``; the
server's reorder buffer unwraps it (see :mod:`repro.serve.reorder`).
``reading`` may be NaN — an explicit missing measurement, routed into
the detector's imputation path like any other gap.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import math
import struct
import zlib
from enum import IntEnum

MAGIC = 0x7E
#: Wire seq numbers live in u32 and wrap at this modulus.
SEQ_MOD = 2**32
#: Upper bound on ``length``; anything larger is structural desync, not
#: a plausible frame (the largest real body is a short JSON HELLO).
MAX_FRAME_BODY = 4096
_HEADER = struct.Struct(">BI")  # magic, length
_DATA = struct.Struct(">IIdd")  # station, seq, timestamp, reading
_ACK = struct.Struct(">IIB")  # station, seq, status
_BUSY = struct.Struct(">II")  # station, seq


class ProtocolError(RuntimeError):
    """The byte stream is structurally broken; close the connection."""


class FrameType(IntEnum):
    #: Never sent on the wire: a decoder sentinel for a frame whose CRC
    #: check failed but whose framing was intact.
    CORRUPT = 0
    HELLO = 1
    WELCOME = 2
    DATA = 3
    ACK = 4
    BUSY = 5
    ERROR = 6
    BYE = 7


class AckStatus(IntEnum):
    OK = 0  # accepted into the reorder buffer
    DUPLICATE = 1  # already delivered (resend/dup); nothing to do
    LATE = 2  # past the watermark; dropped, counted as missing


def encode_frame(ftype: FrameType, body: bytes = b"") -> bytes:
    """Serialize one frame (magic + length + type + body + CRC)."""
    if len(body) > MAX_FRAME_BODY:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BODY}")
    payload = bytes([ftype]) + body
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, len(payload) + 4) + payload + struct.pack(">I", crc)


class FrameDecoder:
    """Incremental frame parser over an arbitrary chunking of the stream.

    Feed it whatever the socket hands you; it yields complete frames and
    buffers the rest.  CRC failures come back as ``(FrameType.CORRUPT,
    b"")``; structural desync raises :class:`ProtocolError`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> list[tuple[FrameType, bytes]]:
        self._buf.extend(chunk)
        frames: list[tuple[FrameType, bytes]] = []
        while len(self._buf) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise ProtocolError(f"bad magic byte 0x{magic:02x}; stream desynced")
            if not 5 <= length <= MAX_FRAME_BODY + 5:
                raise ProtocolError(f"implausible frame length {length}; stream desynced")
            end = _HEADER.size + length
            if len(self._buf) < end:
                break
            payload = bytes(self._buf[_HEADER.size : end - 4])
            (crc,) = struct.unpack_from(">I", self._buf, end - 4)
            del self._buf[:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                frames.append((FrameType.CORRUPT, b""))
                continue
            try:
                ftype = FrameType(payload[0])
            except ValueError:
                # Unknown-but-well-framed type: corrupt payload, framing
                # intact. Skip it; the sender's resend recovers.
                frames.append((FrameType.CORRUPT, b""))
                continue
            if ftype is FrameType.CORRUPT:
                frames.append((FrameType.CORRUPT, b""))
                continue
            frames.append((ftype, payload[1:]))
        return frames


def pack_data(station: int, seq: int, timestamp: float, reading: float) -> bytes:
    """Encode a DATA frame. ``seq`` is taken modulo :data:`SEQ_MOD`."""
    body = _DATA.pack(station, seq % SEQ_MOD, timestamp, reading)
    return encode_frame(FrameType.DATA, body)


def unpack_data(body: bytes) -> tuple[int, int, float, float]:
    if len(body) != _DATA.size:
        raise ProtocolError(f"DATA body must be {_DATA.size} bytes, got {len(body)}")
    return _DATA.unpack(body)


def pack_ack(station: int, seq: int, status: AckStatus) -> bytes:
    return encode_frame(FrameType.ACK, _ACK.pack(station, seq % SEQ_MOD, status))


def unpack_ack(body: bytes) -> tuple[int, int, AckStatus]:
    if len(body) != _ACK.size:
        raise ProtocolError(f"ACK body must be {_ACK.size} bytes, got {len(body)}")
    station, seq, status = _ACK.unpack(body)
    return station, seq, AckStatus(status)


def pack_busy(station: int, seq: int) -> bytes:
    return encode_frame(FrameType.BUSY, _BUSY.pack(station, seq % SEQ_MOD))


def unpack_busy(body: bytes) -> tuple[int, int]:
    if len(body) != _BUSY.size:
        raise ProtocolError(f"BUSY body must be {_BUSY.size} bytes, got {len(body)}")
    return _BUSY.unpack(body)


def sign_token(secret: str, client_id: str) -> str:
    """HMAC-SHA256 credential binding ``client_id`` to a shared secret.

    The HELLO token under secret-based auth: the client derives it from
    the deployment's shared secret and its own id, the server recomputes
    and compares in constant time.  Unlike a bare shared token, a
    captured credential only impersonates that one ``client_id``, and
    the secret itself never crosses the wire.
    """
    return hmac.new(secret.encode(), client_id.encode(), hashlib.sha256).hexdigest()


def pack_hello(client_id: str, token: str = "") -> bytes:
    body = json.dumps({"client_id": client_id, "token": token}).encode()
    return encode_frame(FrameType.HELLO, body)


def unpack_hello(body: bytes) -> dict:
    try:
        hello = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed HELLO body: {exc}") from exc
    if not isinstance(hello, dict) or "client_id" not in hello:
        raise ProtocolError("HELLO body must be a JSON object with client_id")
    return hello


def pack_welcome(session: str, max_inflight: int) -> bytes:
    body = json.dumps({"session": session, "max_inflight": max_inflight}).encode()
    return encode_frame(FrameType.WELCOME, body)


def unpack_welcome(body: bytes) -> dict:
    try:
        welcome = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed WELCOME body: {exc}") from exc
    if not isinstance(welcome, dict) or "max_inflight" not in welcome:
        raise ProtocolError("WELCOME body must be a JSON object with max_inflight")
    return welcome


def pack_error(message: str) -> bytes:
    return encode_frame(FrameType.ERROR, message.encode())


def is_missing(reading: float) -> bool:
    """NaN readings are explicit missing-data markers on the wire."""
    return math.isnan(reading)
