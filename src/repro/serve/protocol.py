"""Framed wire protocol for the live ingestion service.

Every message on the wire is one *frame*::

    +-------+----------------+------+----------+-----------+
    | magic | length (u32 BE)| type | body ... | crc32 (BE)|
    +-------+----------------+------+----------+-----------+
      0x7E    len(type+body+crc)      length - 5 bytes

``length`` counts everything after the length field (type byte + body +
4-byte CRC), so a reader can always consume exactly one frame without
understanding its type.  The CRC-32 (:func:`zlib.crc32`) covers the type
byte and body.  Two distinct failure modes fall out of this layout:

* **Payload corruption** — magic and length are intact, the CRC check
  fails.  Framing survives: the reader stays synchronized and reports
  the damaged frame as :data:`FrameType.CORRUPT` (a sentinel that never
  appears on the wire) so the server can count it and simply *not ack*;
  the client's idempotent resend-by-seq delivers a clean copy.
* **Structural desync** — wrong magic byte or an absurd length.  The
  byte stream can no longer be trusted at all; the reader raises
  :class:`ProtocolError` and the connection must be torn down (the
  client reconnects and resends everything unacked).

Body formats (all big-endian):

============= ======================= ====================================
type          body                    meaning
============= ======================= ====================================
HELLO         UTF-8 JSON              ``{"client_id", "token"[, "v"]}``
WELCOME       UTF-8 JSON              ``{"session", "max_inflight"
                                      [, "version", "max_batch"]}``
DATA          ``>IIdd``               station u32, seq u32, unix ts, reading
ACK           ``>IIB``                station, seq, :class:`AckStatus`
BUSY          ``>II`` or ``>IIf``     station, seq rejected — back off;
                                      the optional f32 is a retry-after
                                      hint in seconds
ERROR         UTF-8 text              fatal; server closes the connection
BYE           empty                   graceful close
BATCH_DATA    packed records (v2)     ``N × (station u32, seq u32,
                                      ts f64, reading f64)`` — 24 B each
BATCH_ACK     packed records (v2)     ``N × (station u32, seq u32,
                                      status u8)`` — 9 B each
ADD_STATIONS  UTF-8 JSON (v2)         control plane: grow the fleet
DROP_STATIONS UTF-8 JSON (v2)         control plane: shrink the fleet
CONTROL_ACK   UTF-8 JSON (v2)         outcome of a control-plane op
============= ======================= ====================================

**Version negotiation** rides the JSON handshake, so it is byte-for-byte
compatible with v1 peers (extra JSON keys are ignored): a HELLO may
advertise the versions the client speaks (``"v": [1, 2]``; absent means
``[1]``), and the WELCOME answers with the chosen one (``"version": 2``;
absent means 1).  The v2-only frame types above are valid only on a
session that negotiated version 2.

``seq`` is an unsigned 32-bit *tick index* that wraps at ``2**32``; the
server's reorder buffer unwraps it (see :mod:`repro.serve.reorder`).
``reading`` may be NaN — an explicit missing measurement, routed into
the detector's imputation path like any other gap.  BATCH_DATA/BATCH_ACK
bodies are numpy structured arrays on the wire — many readings cross in
one frame, one CRC, one ack — and are the only frames whose body may
exceed :data:`MAX_FRAME_BODY` (up to :data:`MAX_BATCH_BODY`).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import math
import struct
import zlib
from enum import IntEnum

import numpy as np

MAGIC = 0x7E
#: Wire seq numbers live in u32 and wrap at this modulus.
SEQ_MOD = 2**32
#: Protocol versions this implementation speaks.  Version 2 adds the
#: batch data frames and the fleet control plane.
PROTOCOL_VERSIONS = (1, 2)
#: Upper bound on ``length``; anything larger is structural desync, not
#: a plausible frame (the largest real body is a short JSON HELLO).
#: BATCH_DATA/BATCH_ACK frames are the one exception — see
#: :data:`MAX_BATCH_BODY`.
MAX_FRAME_BODY = 4096
#: Structural bound for BATCH_DATA/BATCH_ACK bodies, the only frame
#: types allowed past :data:`MAX_FRAME_BODY`.
MAX_BATCH_BODY = 65536
_HEADER = struct.Struct(">BI")  # magic, length
_DATA = struct.Struct(">IIdd")  # station, seq, timestamp, reading
_ACK = struct.Struct(">IIB")  # station, seq, status
_BUSY = struct.Struct(">II")  # station, seq
_BUSY_HINT = struct.Struct(">IIf")  # station, seq, retry-after seconds

#: One BATCH_DATA record — big-endian, packed (24 bytes).
BATCH_DTYPE = np.dtype(
    [("station", ">u4"), ("seq", ">u4"), ("timestamp", ">f8"), ("reading", ">f8")]
)
#: One BATCH_ACK record — big-endian, packed (9 bytes).
BATCH_ACK_DTYPE = np.dtype([("station", ">u4"), ("seq", ">u4"), ("status", "u1")])
#: Most readings one BATCH_DATA frame can carry.
MAX_BATCH_RECORDS = MAX_BATCH_BODY // BATCH_DTYPE.itemsize


class ProtocolError(RuntimeError):
    """The byte stream is structurally broken; close the connection."""


class FrameType(IntEnum):
    #: Never sent on the wire: a decoder sentinel for a frame whose CRC
    #: check failed but whose framing was intact.
    CORRUPT = 0
    HELLO = 1
    WELCOME = 2
    DATA = 3
    ACK = 4
    BUSY = 5
    ERROR = 6
    BYE = 7
    # Protocol v2 — only valid on a session that negotiated version 2.
    BATCH_DATA = 8
    BATCH_ACK = 9
    ADD_STATIONS = 10
    DROP_STATIONS = 11
    CONTROL_ACK = 12


#: The only frame types whose body may exceed :data:`MAX_FRAME_BODY`.
_BATCH_TYPES = (FrameType.BATCH_DATA, FrameType.BATCH_ACK)


class AckStatus(IntEnum):
    OK = 0  # accepted into the reorder buffer
    DUPLICATE = 1  # already delivered (resend/dup); nothing to do
    LATE = 2  # past the watermark; dropped, counted as missing
    #: v2, BATCH_ACK only: this reading overflowed the reorder window —
    #: not terminal, back off and resend (the batch-wide BUSY).
    BUSY = 3


def encode_frame(ftype: FrameType, body: bytes = b"") -> bytes:
    """Serialize one frame (magic + length + type + body + CRC)."""
    limit = MAX_BATCH_BODY if ftype in _BATCH_TYPES else MAX_FRAME_BODY
    if len(body) > limit:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds {limit}")
    payload = bytes([ftype]) + body
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, len(payload) + 4) + payload + struct.pack(">I", crc)


class FrameDecoder:
    """Incremental frame parser over an arbitrary chunking of the stream.

    Feed it whatever the socket hands you; it yields complete frames and
    buffers the rest.  CRC failures come back as ``(FrameType.CORRUPT,
    b"")``; structural desync raises :class:`ProtocolError`.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> list[tuple[FrameType, bytes]]:
        self._buf.extend(chunk)
        frames: list[tuple[FrameType, bytes]] = []
        while len(self._buf) >= _HEADER.size:
            magic, length = _HEADER.unpack_from(self._buf)
            if magic != MAGIC:
                raise ProtocolError(f"bad magic byte 0x{magic:02x}; stream desynced")
            if not 5 <= length <= MAX_FRAME_BODY + 5:
                # Only batch frames may run longer; peek the type byte
                # (right after the header) before judging plausibility.
                if not 5 <= length <= MAX_BATCH_BODY + 5:
                    raise ProtocolError(
                        f"implausible frame length {length}; stream desynced"
                    )
                if len(self._buf) < _HEADER.size + 1:
                    break  # need the type byte to judge this length
                if self._buf[_HEADER.size] not in _BATCH_TYPES:
                    raise ProtocolError(
                        f"implausible frame length {length} for type "
                        f"0x{self._buf[_HEADER.size]:02x}; stream desynced"
                    )
            end = _HEADER.size + length
            if len(self._buf) < end:
                break
            payload = bytes(self._buf[_HEADER.size : end - 4])
            (crc,) = struct.unpack_from(">I", self._buf, end - 4)
            del self._buf[:end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                frames.append((FrameType.CORRUPT, b""))
                continue
            try:
                ftype = FrameType(payload[0])
            except ValueError:
                # Unknown-but-well-framed type: corrupt payload, framing
                # intact. Skip it; the sender's resend recovers.
                frames.append((FrameType.CORRUPT, b""))
                continue
            if ftype is FrameType.CORRUPT:
                frames.append((FrameType.CORRUPT, b""))
                continue
            frames.append((ftype, payload[1:]))
        return frames


def pack_data(station: int, seq: int, timestamp: float, reading: float) -> bytes:
    """Encode a DATA frame. ``seq`` is taken modulo :data:`SEQ_MOD`."""
    body = _DATA.pack(station, seq % SEQ_MOD, timestamp, reading)
    return encode_frame(FrameType.DATA, body)


def unpack_data(body: bytes) -> tuple[int, int, float, float]:
    if len(body) != _DATA.size:
        raise ProtocolError(f"DATA body must be {_DATA.size} bytes, got {len(body)}")
    return _DATA.unpack(body)


def pack_ack(station: int, seq: int, status: AckStatus) -> bytes:
    return encode_frame(FrameType.ACK, _ACK.pack(station, seq % SEQ_MOD, status))


def unpack_ack(body: bytes) -> tuple[int, int, AckStatus]:
    if len(body) != _ACK.size:
        raise ProtocolError(f"ACK body must be {_ACK.size} bytes, got {len(body)}")
    station, seq, status = _ACK.unpack(body)
    return station, seq, AckStatus(status)


def pack_busy(station: int, seq: int, retry_after: float | None = None) -> bytes:
    """Encode a BUSY frame, optionally hinting when to come back.

    ``retry_after`` (seconds) tells the sender how long the server's
    token bucket actually needs before this reading can be admitted, so
    a rate-limited client backs off for the real refill time instead of
    guessing with blind exponential backoff.  The hint is a trailing
    optional field: v1 peers that only know the 8-byte body still parse
    hint-less BUSY frames unchanged.
    """
    if retry_after is None:
        body = _BUSY.pack(station, seq % SEQ_MOD)
    else:
        body = _BUSY_HINT.pack(station, seq % SEQ_MOD, max(0.0, float(retry_after)))
    return encode_frame(FrameType.BUSY, body)


def unpack_busy(body: bytes) -> tuple[int, int, float | None]:
    if len(body) == _BUSY.size:
        station, seq = _BUSY.unpack(body)
        return station, seq, None
    if len(body) == _BUSY_HINT.size:
        station, seq, retry_after = _BUSY_HINT.unpack(body)
        return station, seq, retry_after
    raise ProtocolError(
        f"BUSY body must be {_BUSY.size} or {_BUSY_HINT.size} bytes, got {len(body)}"
    )


def pack_batch_data(stations, seqs, timestamps, readings) -> bytes:
    """Encode one BATCH_DATA frame from parallel arrays (v2).

    ``stations`` must be 1-D; the other three broadcast against it
    (a scalar timestamp stamps the whole batch).  ``seqs`` are taken
    modulo :data:`SEQ_MOD`.  The body is a packed big-endian numpy
    structured array (:data:`BATCH_DTYPE`) — at most
    :data:`MAX_BATCH_RECORDS` readings per frame; callers chunk.
    """
    stations = np.asarray(stations, dtype=np.int64)
    if stations.ndim != 1 or stations.size == 0:
        raise ProtocolError("BATCH_DATA needs a non-empty 1-D station array")
    if stations.size > MAX_BATCH_RECORDS:
        raise ProtocolError(
            f"batch of {stations.size} readings exceeds {MAX_BATCH_RECORDS} per frame"
        )
    if int(stations.min()) < 0 or int(stations.max()) >= SEQ_MOD:
        raise ProtocolError("station ids must fit in u32")
    records = np.empty(stations.size, dtype=BATCH_DTYPE)
    records["station"] = stations
    records["seq"] = np.mod(
        np.broadcast_to(np.asarray(seqs, dtype=np.int64), stations.shape), SEQ_MOD
    )
    records["timestamp"] = np.broadcast_to(
        np.asarray(timestamps, dtype=np.float64), stations.shape
    )
    records["reading"] = np.broadcast_to(
        np.asarray(readings, dtype=np.float64), stations.shape
    )
    return encode_frame(FrameType.BATCH_DATA, records.tobytes())


def unpack_batch_data(body: bytes) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Decode a BATCH_DATA body into (stations, seqs, timestamps, readings).

    A body that is empty or cut mid-record (truncated despite a valid
    CRC) cannot be trusted record-by-record — structural error.
    """
    if not body or len(body) % BATCH_DTYPE.itemsize:
        raise ProtocolError(
            f"BATCH_DATA body empty or truncated mid-record: must be a "
            f"positive multiple of {BATCH_DTYPE.itemsize} bytes, got {len(body)}"
        )
    records = np.frombuffer(body, dtype=BATCH_DTYPE)
    return (
        records["station"].astype(np.int64),
        records["seq"].astype(np.int64),
        records["timestamp"].astype(np.float64),
        records["reading"].astype(np.float64),
    )


def pack_batch_ack(stations, seqs, statuses) -> bytes:
    """Encode one BATCH_ACK frame: per-reading statuses, one CRC (v2)."""
    stations = np.asarray(stations, dtype=np.int64)
    if stations.ndim != 1 or stations.size == 0:
        raise ProtocolError("BATCH_ACK needs a non-empty 1-D station array")
    records = np.empty(stations.size, dtype=BATCH_ACK_DTYPE)
    records["station"] = stations
    records["seq"] = np.mod(np.asarray(seqs, dtype=np.int64), SEQ_MOD)
    records["status"] = np.asarray(statuses, dtype=np.uint8)
    return encode_frame(FrameType.BATCH_ACK, records.tobytes())


def unpack_batch_ack(body: bytes) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode a BATCH_ACK body into (stations, seqs, status codes)."""
    if not body or len(body) % BATCH_ACK_DTYPE.itemsize:
        raise ProtocolError(
            f"BATCH_ACK body empty or truncated mid-record: must be a "
            f"positive multiple of {BATCH_ACK_DTYPE.itemsize} bytes, got {len(body)}"
        )
    records = np.frombuffer(body, dtype=BATCH_ACK_DTYPE)
    return (
        records["station"].astype(np.int64),
        records["seq"].astype(np.int64),
        records["status"].astype(np.uint8),
    )


def sign_token(secret: str, client_id: str) -> str:
    """HMAC-SHA256 credential binding ``client_id`` to a shared secret.

    The HELLO token under secret-based auth: the client derives it from
    the deployment's shared secret and its own id, the server recomputes
    and compares in constant time.  Unlike a bare shared token, a
    captured credential only impersonates that one ``client_id``, and
    the secret itself never crosses the wire.
    """
    return hmac.new(secret.encode(), client_id.encode(), hashlib.sha256).hexdigest()


def sign_control_token(secret: str, client_id: str) -> str:
    """HMAC-SHA256 credential for control-plane frames (ADD/DROP_STATIONS).

    Deliberately distinct from the HELLO credential (the message is
    prefixed with ``control:``): a captured data-plane token cannot be
    replayed to reshape the fleet.
    """
    return hmac.new(
        secret.encode(), b"control:" + client_id.encode(), hashlib.sha256
    ).hexdigest()


def pack_hello(client_id: str, token: str = "", versions=None) -> bytes:
    """Encode HELLO; ``versions`` advertises protocol versions beyond 1.

    Omitted (or ``(1,)``) keeps the body byte-for-byte identical to a
    v1 client's HELLO.
    """
    payload: dict = {"client_id": client_id, "token": token}
    if versions is not None and tuple(versions) != (1,):
        payload["v"] = sorted(int(v) for v in versions)
    body = json.dumps(payload).encode()
    return encode_frame(FrameType.HELLO, body)


def unpack_hello(body: bytes) -> dict:
    try:
        hello = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed HELLO body: {exc}") from exc
    if not isinstance(hello, dict) or "client_id" not in hello:
        raise ProtocolError("HELLO body must be a JSON object with client_id")
    return hello


def negotiate_version(hello: dict) -> int:
    """Protocol version a server should answer this HELLO with.

    The highest version both sides speak; a HELLO without a ``"v"``
    offer is a v1 client.  An offer with no overlap falls back to 1 —
    the base version every peer that produced a well-formed HELLO
    necessarily speaks.
    """
    offered = hello.get("v")
    if offered is None:
        return 1
    try:
        common = {int(v) for v in offered} & set(PROTOCOL_VERSIONS)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed HELLO version offer {offered!r}") from exc
    return max(common) if common else 1


def pack_welcome(
    session: str,
    max_inflight: int,
    version: int | None = None,
    max_batch: int | None = None,
) -> bytes:
    """Encode WELCOME; ``version`` > 1 announces the negotiated protocol.

    ``version=None`` (or 1) keeps the body byte-for-byte identical to a
    v1 server's WELCOME.  ``max_batch`` tells a v2 client how many
    readings the server accepts per BATCH_DATA frame.
    """
    payload: dict = {"session": session, "max_inflight": max_inflight}
    if version is not None and int(version) != 1:
        payload["version"] = int(version)
        payload["max_batch"] = int(max_batch if max_batch is not None else MAX_BATCH_RECORDS)
    body = json.dumps(payload).encode()
    return encode_frame(FrameType.WELCOME, body)


def unpack_welcome(body: bytes) -> dict:
    try:
        welcome = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed WELCOME body: {exc}") from exc
    if not isinstance(welcome, dict) or "max_inflight" not in welcome:
        raise ProtocolError("WELCOME body must be a JSON object with max_inflight")
    return welcome


def pack_error(message: str) -> bytes:
    return encode_frame(FrameType.ERROR, message.encode())


def _pack_control(ftype: FrameType, payload: dict) -> bytes:
    return encode_frame(ftype, json.dumps(payload).encode())


def pack_add_stations(
    n_new: int,
    *,
    thresholds=None,
    data_min=None,
    data_max=None,
    token: str = "",
    cid: int = 0,
) -> bytes:
    """Encode an ADD_STATIONS control frame (v2, auth-gated).

    Mirrors the engine churn API: optional per-newcomer thresholds and
    scaler bounds travel as JSON lists.  ``cid`` is an opaque
    correlation id echoed back in the CONTROL_ACK.
    """
    payload: dict = {"cid": int(cid), "n_new": int(n_new), "token": token}
    if thresholds is not None:
        payload["thresholds"] = (
            float(thresholds)
            if np.isscalar(thresholds)
            else np.asarray(thresholds, dtype=np.float64).tolist()
        )
    if data_min is not None:
        payload["data_min"] = np.asarray(data_min, dtype=np.float64).tolist()
    if data_max is not None:
        payload["data_max"] = np.asarray(data_max, dtype=np.float64).tolist()
    return _pack_control(FrameType.ADD_STATIONS, payload)


def pack_drop_stations(stations, *, token: str = "", cid: int = 0) -> bytes:
    """Encode a DROP_STATIONS control frame (v2, auth-gated)."""
    payload = {
        "cid": int(cid),
        "stations": np.asarray(stations, dtype=np.int64).tolist(),
        "token": token,
    }
    return _pack_control(FrameType.DROP_STATIONS, payload)


def unpack_control(body: bytes) -> dict:
    """Decode an ADD_STATIONS/DROP_STATIONS body (shared JSON shape)."""
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed control body: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("control body must be a JSON object")
    return payload


def pack_control_ack(
    cid: int, op: str, ok: bool, n_stations: int = 0, error: str = ""
) -> bytes:
    """Encode the outcome of a control-plane op (v2).

    ``n_stations`` reports the fleet width after the op (clients learn
    the post-churn station id range from it).
    """
    payload = {
        "cid": int(cid),
        "op": op,
        "ok": bool(ok),
        "n_stations": int(n_stations),
        "error": error,
    }
    return _pack_control(FrameType.CONTROL_ACK, payload)


def unpack_control_ack(body: bytes) -> dict:
    try:
        ack = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed CONTROL_ACK body: {exc}") from exc
    if not isinstance(ack, dict) or "ok" not in ack:
        raise ProtocolError("CONTROL_ACK body must be a JSON object with ok")
    return ack


def is_missing(reading: float) -> bool:
    """NaN readings are explicit missing-data markers on the wire."""
    return math.isnan(reading)
