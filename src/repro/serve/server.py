"""Asyncio ingestion server driving the streaming detector.

Data path::

    client ──DATA──▶ connection handler ──▶ bounded ingest queue
                                                 │  (backpressure)
                                                 ▼
                                          consumer task
                                                 │ offer()
                                                 ▼
                                          ReorderBuffer ──drain──▶ column
                                                                   batcher
                                                                     │ B cols
                                                                     ▼
                                                      engine.step_block(...)

Correctness contract: blocks are always exactly ``block_size`` columns
of consecutive ticks (the trailing partial block happens only at
:meth:`IngestionServer.finish`), which is precisely the partition
:meth:`StreamReplayEngine.run` uses — so the served flags/scores/
mitigated outputs are **bit-exact** against an offline replay of the
effectively-delivered readings (undelivered slots as NaN missing).

Failure semantics:

* Frames failing CRC are counted and *not acked*; the client's
  idempotent resend-by-seq delivers a clean copy.
* A full ingest queue triggers the configured backpressure ``policy``:
  ``"reject"`` answers BUSY (client backs off, retries); ``"shed"``
  drops the *oldest queued* reading instead — it was never acked, so
  its sender retries it too.
* Readings past the reorder watermark are acked LATE and dropped; their
  tick already shipped with that slot NaN → imputed downstream.
* SIGTERM (see :meth:`install_signal_handlers`) drains the ingest queue
  into the reorder buffer, writes a checkpoint bundling detector +
  mitigator + reorder/batcher state, and closes.  A server restored
  with :meth:`IngestionServer.from_checkpoint` resumes the timeline
  bit-exactly — block boundaries stay globally aligned, so the combined
  pre/post-restart output equals one uninterrupted run.
"""

from __future__ import annotations

import asyncio
import hmac
import signal
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.serve._metrics import ingest_metrics
from repro.serve.protocol import (
    FrameDecoder,
    FrameType,
    AckStatus,
    ProtocolError,
    encode_frame,
    pack_ack,
    pack_busy,
    pack_error,
    pack_welcome,
    sign_token,
    unpack_data,
    unpack_hello,
)
from repro.serve.reorder import Offer, ReorderBuffer
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.engine import ReplayDriver, StreamReplayEngine
from repro.stream.shard import (
    MANIFEST_NAME,
    ShardedFleetEngine,
    load_sharded_checkpoint,
    save_sharded_checkpoint,
)

_OFFER_ACK = {
    Offer.ACCEPTED: AckStatus.OK,
    Offer.DUPLICATE: AckStatus.DUPLICATE,
    Offer.LATE: AckStatus.LATE,
}


class _TokenBucket:
    """Classic token bucket: ``rate`` refills/s up to ``burst`` capacity."""

    __slots__ = ("tokens", "last")

    def __init__(self, burst: float) -> None:
        self.tokens = float(burst)
        self.last = time.perf_counter()

    def take(self, rate: float, burst: float) -> bool:
        now = time.perf_counter()
        self.tokens = min(float(burst), self.tokens + (now - self.last) * rate)
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class _Conn:
    """Per-connection bookkeeping: writer, identity, inflight quota."""

    __slots__ = ("writer", "client_id", "inflight")

    def __init__(self, writer: asyncio.StreamWriter, client_id: str) -> None:
        self.writer = writer
        self.client_id = client_id
        self.inflight = 0

    def send(self, frame: bytes) -> None:
        try:
            if not self.writer.is_closing():
                self.writer.write(frame)
        except (ConnectionError, OSError):
            pass  # the peer vanished; its retries land on a new connection


class IngestionServer:
    """Serve the streaming detector over the framed wire protocol.

    Parameters
    ----------
    engine:
        A calibrated replay engine whose detector was built with
        ``missing="impute"`` (undelivered readings become NaN columns
        and *must* be imputable) — either the in-process
        :class:`~repro.stream.engine.StreamReplayEngine` or a
        :class:`~repro.stream.shard.ShardedFleetEngine` fronting a
        worker fleet; the server routes blocks through whichever
        ``step_block`` it is handed.
    block_size:
        Ticks per detector block; the batcher only fires full blocks.
    lateness, capacity:
        Reorder-buffer watermark lag and buffered-tick span
        (see :class:`~repro.serve.reorder.ReorderBuffer`).
    queue_size:
        Bound of the ingest queue between connections and the consumer.
    policy:
        Backpressure on a full queue: ``"reject"`` (BUSY the sender) or
        ``"shed"`` (drop the oldest queued reading, unacked).
    max_inflight:
        Per-connection unacked-frame quota (announced in WELCOME);
        frames beyond it are answered BUSY without queueing.
    auth_secret:
        When set, HELLO must present the HMAC-SHA256 credential
        :func:`~repro.serve.protocol.sign_token` derives from this
        shared secret and the client's id.  Verified with a
        constant-time compare; a mismatch is answered with ERROR and
        the connection closes.  Clients pass the same value as
        ``IngestClient(secret=...)``.
    auth_token:
        Legacy shared-token auth: HELLO must present exactly this
        token.  ``auth_secret`` supersedes it when both are set.
    rate_limit, rate_burst:
        Per-client token-bucket rate limiting, beyond the inflight
        quota: sustained DATA admission of ``rate_limit`` readings/s
        with bursts up to ``rate_burst`` (default ``2 * rate_limit``).
        Excess frames are answered BUSY (the client backs off and
        retries) and counted in ``repro_serve_rate_limited_total``.
        Buckets are keyed by client id, so reconnecting does not reset
        a client's budget.
    checkpoint_path:
        Where :meth:`shutdown` writes the final checkpoint (optional).
        A single-process engine checkpoints to one ``.npz``; a sharded
        engine writes a manifest *directory* of per-shard members.
    start_tick:
        Absolute tick the timeline starts at (tests park this near the
        u32 wrap point).
    """

    def __init__(
        self,
        engine: ReplayDriver,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        block_size: int = 8,
        lateness: int = 8,
        capacity: int = 1024,
        queue_size: int = 256,
        policy: str = "reject",
        max_inflight: int = 64,
        auth_secret: str | None = None,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        checkpoint_path=None,
        start_tick: int = 0,
    ) -> None:
        if engine.missing_mode != "impute":
            raise ValueError(
                "the served detector must be built with missing='impute': "
                "undelivered readings become NaN columns"
            )
        if policy not in ("reject", "shed"):
            raise ValueError(f"policy must be 'reject' or 'shed', got {policy!r}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be > 0 readings/s, got {rate_limit}")
        if rate_burst is not None:
            if rate_limit is None:
                raise ValueError("rate_burst requires rate_limit")
            if rate_burst < 1:
                raise ValueError(f"rate_burst must be >= 1, got {rate_burst}")
        self.engine = engine
        self.host = host
        self.port = port
        self.block_size = block_size
        self.policy = policy
        self.max_inflight = max_inflight
        self.auth_secret = auth_secret
        self.auth_token = auth_token
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (None if rate_limit is None else max(1.0, 2.0 * rate_limit))
        )
        #: Token buckets keyed by client id (not connection), so a
        #: reconnect keeps spending the same budget.
        self._buckets: dict[str, _TokenBucket] = {}
        self.checkpoint_path = checkpoint_path
        self.n_stations = engine.n_stations
        self.reorder = ReorderBuffer(
            self.n_stations, lateness=lateness, capacity=capacity, start=start_tick
        )
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        # Emitted-but-unprocessed tick columns waiting to fill a block.
        self._columns: list[tuple[int, np.ndarray, float]] = []
        # Served outputs, one column per processed tick.
        self._served_ticks: list[int] = []
        self._served_flags: list[np.ndarray] = []
        self._served_scores: list[np.ndarray] = []
        self._served_missing: list[np.ndarray] = []
        self._served_mitigated: list[np.ndarray] = []
        #: Per-tick ingest→flag latency (seconds) for ticks whose first
        #: frame arrival was tracked; fuels the SLO bench profile.
        self.ingest_latencies: list[float] = []
        self._metrics = ingest_metrics(obs.registry())
        self._server: asyncio.AbstractServer | None = None
        self._consumer: asyncio.Task | None = None
        #: Set when a signal handler schedules :meth:`shutdown`, so the
        #: process can await the drain+checkpoint before exiting.
        self.shutdown_task: asyncio.Task | None = None
        self._sessions = 0
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port) and consume."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._consumer = asyncio.create_task(self._consume())

    def install_signal_handlers(self, sig: signal.Signals = signal.SIGTERM) -> None:
        """Graceful shutdown on ``sig`` (default SIGTERM)."""
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            self.shutdown_task = loop.create_task(self.shutdown())

        loop.add_signal_handler(sig, _on_signal)

    async def shutdown(self) -> None:
        """Drain the queue, checkpoint, close — the SIGTERM path.

        Buffered-but-unemittable state (reorder window, a partial
        block's columns) is *checkpointed, not flushed*: a restored
        server picks the timeline up exactly where it stopped, keeping
        block boundaries globally aligned with an uninterrupted run.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            self._apply(self._queue.get_nowait())
        if self.checkpoint_path is not None:
            # Checkpoint writes hit disk; keep the loop responsive for
            # any connections still draining their BYE handshakes.
            await asyncio.to_thread(self.save, self.checkpoint_path)

    async def finish(self) -> None:
        """End-of-stream: flush the reorder window, run the last blocks.

        Unlike :meth:`shutdown`, this declares the stream over —
        everything buffered is emitted (undelivered slots as NaN) and
        processed, ending with a trailing partial block exactly like
        ``engine.run``'s.
        """
        if self._server is not None and not self._closing:
            self._server.close()
            await self._server.wait_closed()
        self._closing = True
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            self._apply(self._queue.get_nowait())
        self._columns.extend(self.reorder.flush())
        while self._columns:
            take = min(self.block_size, len(self._columns))
            self._process_block(self._columns[:take])
            del self._columns[:take]

    def save(self, path) -> None:
        """Checkpoint the pipeline + serve state.

        A single-process engine bundles everything into one ``.npz``; a
        :class:`~repro.stream.shard.ShardedFleetEngine` writes a
        manifest directory instead (delta save: only shards that
        changed since the last checkpoint are rewritten), with the
        serve state in the manifest's ``extra`` member.
        """
        extra: dict[str, np.ndarray] = {}
        for key, value in self.reorder.state_dict().items():
            extra[f"serve.reorder.{key}"] = value
        extra["serve.columns_ticks"] = np.asarray(
            [tick for tick, _, _ in self._columns], dtype=np.int64
        )
        extra["serve.columns_values"] = (
            np.stack([values for _, values, _ in self._columns], axis=1)
            if self._columns
            else np.empty((self.n_stations, 0))
        )
        extra["serve.columns_arrivals"] = np.asarray(
            [arrival for _, _, arrival in self._columns], dtype=np.float64
        )
        extra["serve.block_size"] = np.asarray(self.block_size, dtype=np.int64)
        if isinstance(self.engine, ShardedFleetEngine):
            save_sharded_checkpoint(path, self.engine, extra=extra)
        else:
            save_checkpoint(path, self.engine, extra=extra)

    @classmethod
    def from_checkpoint(cls, path, **kwargs) -> "IngestionServer":
        """Rebuild a server exactly as :meth:`shutdown` left it.

        ``path`` may be a single-file archive or a sharded manifest
        directory — whichever :meth:`save` produced; a sharded restore
        respawns the worker fleet before serving resumes.
        """
        if (Path(path) / MANIFEST_NAME).is_file():
            engine, extra = load_sharded_checkpoint(path)
        else:
            restored = load_checkpoint(path)
            engine, extra = restored.engine(), restored.extra
        kwargs.setdefault("block_size", int(extra["serve.block_size"]))
        server = cls(engine, **kwargs)
        server.reorder.load_state_dict(
            {
                key[len("serve.reorder.") :]: value
                for key, value in extra.items()
                if key.startswith("serve.reorder.")
            }
        )
        ticks = np.asarray(extra["serve.columns_ticks"], dtype=np.int64)
        values = np.asarray(extra["serve.columns_values"], dtype=np.float64)
        arrivals = np.asarray(extra["serve.columns_arrivals"], dtype=np.float64)
        server._columns = [
            (int(ticks[i]), values[:, i].copy(), float(arrivals[i]))
            for i in range(len(ticks))
        ]
        return server

    # ------------------------------------------------------------------
    # connections

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        conn: _Conn | None = None
        try:
            conn = await self._handshake(reader, writer, decoder)
            if conn is None:
                return
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    return
                for ftype, body in decoder.feed(chunk):
                    if ftype is FrameType.DATA:
                        self._on_data(conn, body)
                    elif ftype is FrameType.CORRUPT:
                        self._metrics["corrupt"].inc()
                    elif ftype is FrameType.BYE:
                        return
                    # Anything else from a client is ignorable noise.
        except ProtocolError as exc:
            try:
                writer.write(pack_error(str(exc)))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                if not writer.is_closing():
                    writer.write(encode_frame(FrameType.BYE))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()

    async def _handshake(self, reader, writer, decoder) -> _Conn | None:
        while True:
            chunk = await reader.read(4096)
            if not chunk:
                return None
            frames = decoder.feed(chunk)
            if not frames:
                continue
            ftype, body = frames[0]
            if ftype is not FrameType.HELLO:
                raise ProtocolError(f"expected HELLO, got {ftype.name}")
            hello = unpack_hello(body)
            if not self._authenticate(hello):
                self._metrics["auth_failures"].inc()
                writer.write(pack_error("authentication failed"))
                await writer.drain()
                writer.close()
                return None
            self._sessions += 1
            conn = _Conn(writer, str(hello["client_id"]))
            writer.write(pack_welcome(f"s{self._sessions}", self.max_inflight))
            await writer.drain()
            # A greedy client may pipeline DATA right behind HELLO.
            for extra_type, extra_body in frames[1:]:
                if extra_type is FrameType.DATA:
                    self._on_data(conn, extra_body)
                elif extra_type is FrameType.CORRUPT:
                    self._metrics["corrupt"].inc()
            return conn

    def _authenticate(self, hello: dict) -> bool:
        """Check HELLO credentials (constant-time on both paths)."""
        token = str(hello.get("token") or "")
        if self.auth_secret is not None:
            expected = sign_token(self.auth_secret, str(hello["client_id"]))
            return hmac.compare_digest(token, expected)
        if self.auth_token is not None:
            return hmac.compare_digest(token, self.auth_token)
        return True

    def _on_data(self, conn: _Conn, body: bytes) -> None:
        station, seq, timestamp, reading = unpack_data(body)
        self._metrics["frames"].inc()
        if not 0 <= station < self.n_stations:
            raise ProtocolError(f"station {station} out of range [0, {self.n_stations})")
        if self.rate_limit is not None:
            bucket = self._buckets.get(conn.client_id)
            if bucket is None:
                bucket = self._buckets[conn.client_id] = _TokenBucket(self.rate_burst)
            if not bucket.take(self.rate_limit, self.rate_burst):
                # Over budget: BUSY, unacked — the client backs off and
                # resends, exactly like queue backpressure.
                self._metrics["rate_limited"].inc()
                self._metrics["busy"].inc()
                conn.send(pack_busy(station, seq))
                return
        if conn.inflight >= self.max_inflight:
            self._metrics["busy"].inc()
            conn.send(pack_busy(station, seq))
            return
        item = (conn, station, seq, timestamp, reading, time.perf_counter())
        if self._queue.full():
            if self.policy == "reject":
                self._metrics["busy"].inc()
                conn.send(pack_busy(station, seq))
                return
            # shed-oldest: the victim is silently dropped — never acked,
            # so its sender retransmits it after backoff.
            victim = self._queue.get_nowait()
            victim[0].inflight -= 1
            self._metrics["shed"].inc()
        conn.inflight += 1
        self._queue.put_nowait(item)
        self._metrics["queue_depth"].set(float(self._queue.qsize()))

    # ------------------------------------------------------------------
    # consumer

    async def _consume(self) -> None:
        while True:
            item = await self._queue.get()
            self._apply(item)
            self._metrics["queue_depth"].set(float(self._queue.qsize()))

    def _apply(self, item) -> None:
        conn, station, seq, _timestamp, reading, arrival = item
        conn.inflight -= 1
        outcome = self.reorder.offer(station, seq, reading, arrival=arrival)
        if outcome is Offer.OVERFLOW:
            self._metrics["busy"].inc()
            conn.send(pack_busy(station, seq))
        else:
            if outcome is Offer.ACCEPTED:
                self._metrics["accepted"].inc()
            elif outcome is Offer.DUPLICATE:
                self._metrics["duplicates"].inc()
            else:
                self._metrics["late"].inc()
            conn.send(pack_ack(station, seq, _OFFER_ACK[outcome]))
        self._columns.extend(self.reorder.drain())
        self._metrics["pending_ticks"].set(float(self.reorder.pending_ticks))
        while len(self._columns) >= self.block_size:
            self._process_block(self._columns[: self.block_size])
            del self._columns[: self.block_size]

    def _process_block(self, columns: list[tuple[int, np.ndarray, float]]) -> None:
        values = np.stack([col for _, col, _ in columns], axis=1)
        flags, scores, missing, mitigated = self.engine.step_block(values)
        done = time.perf_counter()
        for i, (tick, _, arrival) in enumerate(columns):
            self._served_ticks.append(tick)
            self._served_flags.append(flags[:, i])
            self._served_scores.append(scores[:, i])
            self._served_missing.append(missing[:, i])
            self._served_mitigated.append(mitigated[:, i])
            if arrival > 0.0:
                latency = max(0.0, done - arrival)
                self.ingest_latencies.append(latency)
                self._metrics["ingest_latency"].observe(latency)
        self._metrics["blocks"].inc()

    # ------------------------------------------------------------------
    # results

    def served(self) -> dict[str, np.ndarray]:
        """Everything decided so far, one column per processed tick."""

        def stack(cols: list[np.ndarray], dtype) -> np.ndarray:
            if not cols:
                return np.empty((self.n_stations, 0), dtype=dtype)
            return np.stack(cols, axis=1)

        return {
            "ticks": np.asarray(self._served_ticks, dtype=np.int64),
            "flags": stack(self._served_flags, bool),
            "scores": stack(self._served_scores, np.float64),
            "missing": stack(self._served_missing, bool),
            "mitigated": stack(self._served_mitigated, np.float64),
        }
