"""Asyncio ingestion server driving the streaming detector.

Data path::

    client ──DATA──▶ connection handler ──▶ bounded ingest queue
                                                 │  (backpressure)
                                                 ▼
                                          consumer task
                                                 │ offer()
                                                 ▼
                                          ReorderBuffer ──drain──▶ column
                                                                   batcher
                                                                     │ B cols
                                                                     ▼
                                                      engine.step_block(...)

Correctness contract: blocks are always exactly ``block_size`` columns
of consecutive ticks (the trailing partial block happens only at
:meth:`IngestionServer.finish`), which is precisely the partition
:meth:`StreamReplayEngine.run` uses — so the served flags/scores/
mitigated outputs are **bit-exact** against an offline replay of the
effectively-delivered readings (undelivered slots as NaN missing).

Failure semantics:

* Frames failing CRC are counted and *not acked*; the client's
  idempotent resend-by-seq delivers a clean copy.
* A full ingest queue triggers the configured backpressure ``policy``:
  ``"reject"`` answers BUSY (client backs off, retries); ``"shed"``
  drops the *oldest queued* reading instead — it was never acked, so
  its sender retries it too.
* Readings past the reorder watermark are acked LATE and dropped; their
  tick already shipped with that slot NaN → imputed downstream.
* SIGTERM (see :meth:`install_signal_handlers`) drains the ingest queue
  into the reorder buffer, writes a checkpoint bundling detector +
  mitigator + reorder/batcher state, and closes.  A server restored
  with :meth:`IngestionServer.from_checkpoint` resumes the timeline
  bit-exactly — block boundaries stay globally aligned, so the combined
  pre/post-restart output equals one uninterrupted run.
"""

from __future__ import annotations

import asyncio
import hmac
import signal
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.serve._metrics import ingest_metrics
from repro.serve.protocol import (
    MAX_BATCH_RECORDS,
    FrameDecoder,
    FrameType,
    AckStatus,
    ProtocolError,
    encode_frame,
    negotiate_version,
    pack_ack,
    pack_batch_ack,
    pack_busy,
    pack_control_ack,
    pack_error,
    pack_welcome,
    sign_control_token,
    sign_token,
    unpack_batch_data,
    unpack_control,
    unpack_data,
    unpack_hello,
)
from repro.serve.reorder import OFFER_BY_CODE, Offer, ReorderBuffer
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.engine import ReplayDriver, StreamReplayEngine
from repro.stream.shard import (
    MANIFEST_NAME,
    ShardedFleetEngine,
    load_sharded_checkpoint,
    save_sharded_checkpoint,
)

_OFFER_ACK = {
    Offer.ACCEPTED: AckStatus.OK,
    Offer.DUPLICATE: AckStatus.DUPLICATE,
    Offer.LATE: AckStatus.LATE,
}
#: Vectorized Offer-code → AckStatus map, indexed by the uint8 codes
#: ``ReorderBuffer.offer_block`` returns (OVERFLOW acks as BUSY: not
#: terminal, the sender backs off and resends that reading).
_ACK_FOR_CODE = np.array(
    [int(_OFFER_ACK.get(offer, AckStatus.BUSY)) for offer in OFFER_BY_CODE],
    dtype=np.uint8,
)
_CODE_LATE = OFFER_BY_CODE.index(Offer.LATE)


class _TokenBucket:
    """Classic token bucket: ``rate`` refills/s up to ``burst`` capacity."""

    __slots__ = ("tokens", "last")

    def __init__(self, burst: float) -> None:
        self.tokens = float(burst)
        self.last = time.perf_counter()

    def take_many(self, need: float, rate: float, burst: float) -> bool:
        """Spend ``need`` tokens at once, or none (batch admission)."""
        now = time.perf_counter()
        self.tokens = min(float(burst), self.tokens + (now - self.last) * rate)
        self.last = now
        if self.tokens >= need:
            self.tokens -= need
            return True
        return False

    def take(self, rate: float, burst: float) -> bool:
        return self.take_many(1.0, rate, burst)

    def retry_after(self, need: float, rate: float) -> float:
        """Seconds until the bucket can cover ``need`` tokens."""
        return max(0.0, (need - self.tokens) / rate)


class _Conn:
    """Per-connection bookkeeping: writer, identity, version, quota."""

    __slots__ = ("writer", "client_id", "inflight", "version")

    def __init__(self, writer: asyncio.StreamWriter, client_id: str, version: int = 1) -> None:
        self.writer = writer
        self.client_id = client_id
        self.inflight = 0
        self.version = version

    def send(self, frame: bytes) -> None:
        try:
            if not self.writer.is_closing():
                self.writer.write(frame)
        except (ConnectionError, OSError):
            pass  # the peer vanished; its retries land on a new connection


class IngestionServer:
    """Serve the streaming detector over the framed wire protocol.

    Parameters
    ----------
    engine:
        A calibrated replay engine whose detector was built with
        ``missing="impute"`` (undelivered readings become NaN columns
        and *must* be imputable) — either the in-process
        :class:`~repro.stream.engine.StreamReplayEngine` or a
        :class:`~repro.stream.shard.ShardedFleetEngine` fronting a
        worker fleet; the server routes blocks through whichever
        ``step_block`` it is handed.
    block_size:
        Ticks per detector block; the batcher only fires full blocks.
    lateness, capacity:
        Reorder-buffer watermark lag and buffered-tick span
        (see :class:`~repro.serve.reorder.ReorderBuffer`).
    queue_size:
        Bound of the ingest queue between connections and the consumer.
    policy:
        Backpressure on a full queue: ``"reject"`` (BUSY the sender) or
        ``"shed"`` (drop the oldest queued reading, unacked).
    max_inflight:
        Per-connection unacked-frame quota (announced in WELCOME);
        frames beyond it are answered BUSY without queueing.
    auth_secret:
        When set, HELLO must present the HMAC-SHA256 credential
        :func:`~repro.serve.protocol.sign_token` derives from this
        shared secret and the client's id.  Verified with a
        constant-time compare; a mismatch is answered with ERROR and
        the connection closes.  Clients pass the same value as
        ``IngestClient(secret=...)``.
    auth_token:
        Legacy shared-token auth: HELLO must present exactly this
        token.  ``auth_secret`` supersedes it when both are set.
    rate_limit, rate_burst:
        Per-client token-bucket rate limiting, beyond the inflight
        quota: sustained DATA admission of ``rate_limit`` readings/s
        with bursts up to ``rate_burst`` (default ``2 * rate_limit``).
        Excess frames are answered BUSY (the client backs off and
        retries) and counted in ``repro_serve_rate_limited_total``.
        Buckets are keyed by client id, so reconnecting does not reset
        a client's budget.
    checkpoint_path:
        Where :meth:`shutdown` writes the final checkpoint (optional).
        A single-process engine checkpoints to one ``.npz``; a sharded
        engine writes a manifest *directory* of per-shard members.
    start_tick:
        Absolute tick the timeline starts at (tests park this near the
        u32 wrap point).
    """

    def __init__(
        self,
        engine: ReplayDriver,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        block_size: int = 8,
        lateness: int = 8,
        capacity: int = 1024,
        queue_size: int = 256,
        policy: str = "reject",
        max_inflight: int = 64,
        auth_secret: str | None = None,
        auth_token: str | None = None,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        checkpoint_path=None,
        start_tick: int = 0,
    ) -> None:
        if engine.missing_mode != "impute":
            raise ValueError(
                "the served detector must be built with missing='impute': "
                "undelivered readings become NaN columns"
            )
        if policy not in ("reject", "shed"):
            raise ValueError(f"policy must be 'reject' or 'shed', got {policy!r}")
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be > 0 readings/s, got {rate_limit}")
        if rate_burst is not None:
            if rate_limit is None:
                raise ValueError("rate_burst requires rate_limit")
            if rate_burst < 1:
                raise ValueError(f"rate_burst must be >= 1, got {rate_burst}")
        self.engine = engine
        self.host = host
        self.port = port
        self.block_size = block_size
        self.policy = policy
        self.max_inflight = max_inflight
        self.auth_secret = auth_secret
        self.auth_token = auth_token
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (None if rate_limit is None else max(1.0, 2.0 * rate_limit))
        )
        #: Token buckets keyed by client id (not connection), so a
        #: reconnect keeps spending the same budget.
        self._buckets: dict[str, _TokenBucket] = {}
        self.checkpoint_path = checkpoint_path
        self.n_stations = engine.n_stations
        self.reorder = ReorderBuffer(
            self.n_stations, lateness=lateness, capacity=capacity, start=start_tick
        )
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_size)
        # Emitted-but-unprocessed tick columns waiting to fill a block.
        self._columns: list[tuple[int, np.ndarray, float]] = []
        # Served outputs, one column per processed tick.
        self._served_ticks: list[int] = []
        self._served_flags: list[np.ndarray] = []
        self._served_scores: list[np.ndarray] = []
        self._served_missing: list[np.ndarray] = []
        self._served_mitigated: list[np.ndarray] = []
        #: Per-tick ingest→flag latency (seconds) for ticks whose first
        #: frame arrival was tracked; fuels the SLO bench profile.
        self.ingest_latencies: list[float] = []
        self._metrics = ingest_metrics(obs.registry())
        self._server: asyncio.AbstractServer | None = None
        self._consumer: asyncio.Task | None = None
        #: Set when a signal handler schedules :meth:`shutdown`, so the
        #: process can await the drain+checkpoint before exiting.
        self.shutdown_task: asyncio.Task | None = None
        self._sessions = 0
        self._closing = False

    # ------------------------------------------------------------------
    # lifecycle

    async def start(self) -> None:
        """Bind the listener (resolving an ephemeral port) and consume."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._consumer = asyncio.create_task(self._consume())

    def install_signal_handlers(self, sig: signal.Signals = signal.SIGTERM) -> None:
        """Graceful shutdown on ``sig`` (default SIGTERM)."""
        loop = asyncio.get_running_loop()

        def _on_signal() -> None:
            self.shutdown_task = loop.create_task(self.shutdown())

        loop.add_signal_handler(sig, _on_signal)

    async def shutdown(self) -> None:
        """Drain the queue, checkpoint, close — the SIGTERM path.

        Buffered-but-unemittable state (reorder window, a partial
        block's columns) is *checkpointed, not flushed*: a restored
        server picks the timeline up exactly where it stopped, keeping
        block boundaries globally aligned with an uninterrupted run.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            self._apply(self._queue.get_nowait())
        if self.checkpoint_path is not None:
            # Checkpoint writes hit disk; keep the loop responsive for
            # any connections still draining their BYE handshakes.
            await asyncio.to_thread(self.save, self.checkpoint_path)

    async def finish(self) -> None:
        """End-of-stream: flush the reorder window, run the last blocks.

        Unlike :meth:`shutdown`, this declares the stream over —
        everything buffered is emitted (undelivered slots as NaN) and
        processed, ending with a trailing partial block exactly like
        ``engine.run``'s.
        """
        if self._server is not None and not self._closing:
            self._server.close()
            await self._server.wait_closed()
        self._closing = True
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
        while not self._queue.empty():
            self._apply(self._queue.get_nowait())
        self._columns.extend(self.reorder.flush())
        while self._columns:
            take = min(self.block_size, len(self._columns))
            self._process_block(self._columns[:take])
            del self._columns[:take]

    def save(self, path) -> None:
        """Checkpoint the pipeline + serve state.

        A single-process engine bundles everything into one ``.npz``; a
        :class:`~repro.stream.shard.ShardedFleetEngine` writes a
        manifest directory instead (delta save: only shards that
        changed since the last checkpoint are rewritten), with the
        serve state in the manifest's ``extra`` member.
        """
        extra: dict[str, np.ndarray] = {}
        for key, value in self.reorder.state_dict().items():
            extra[f"serve.reorder.{key}"] = value
        extra["serve.columns_ticks"] = np.asarray(
            [tick for tick, _, _ in self._columns], dtype=np.int64
        )
        extra["serve.columns_values"] = (
            np.stack([values for _, values, _ in self._columns], axis=1)
            if self._columns
            else np.empty((self.n_stations, 0))
        )
        extra["serve.columns_arrivals"] = np.asarray(
            [arrival for _, _, arrival in self._columns], dtype=np.float64
        )
        extra["serve.block_size"] = np.asarray(self.block_size, dtype=np.int64)
        if isinstance(self.engine, ShardedFleetEngine):
            save_sharded_checkpoint(path, self.engine, extra=extra)
        else:
            save_checkpoint(path, self.engine, extra=extra)

    @classmethod
    def from_checkpoint(cls, path, **kwargs) -> "IngestionServer":
        """Rebuild a server exactly as :meth:`shutdown` left it.

        ``path`` may be a single-file archive or a sharded manifest
        directory — whichever :meth:`save` produced; a sharded restore
        respawns the worker fleet before serving resumes.
        """
        if (Path(path) / MANIFEST_NAME).is_file():
            engine, extra = load_sharded_checkpoint(path)
        else:
            restored = load_checkpoint(path)
            engine, extra = restored.engine(), restored.extra
        kwargs.setdefault("block_size", int(extra["serve.block_size"]))
        server = cls(engine, **kwargs)
        server.reorder.load_state_dict(
            {
                key[len("serve.reorder.") :]: value
                for key, value in extra.items()
                if key.startswith("serve.reorder.")
            }
        )
        ticks = np.asarray(extra["serve.columns_ticks"], dtype=np.int64)
        values = np.asarray(extra["serve.columns_values"], dtype=np.float64)
        arrivals = np.asarray(extra["serve.columns_arrivals"], dtype=np.float64)
        server._columns = [
            (int(ticks[i]), values[:, i].copy(), float(arrivals[i]))
            for i in range(len(ticks))
        ]
        return server

    # ------------------------------------------------------------------
    # connections

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        decoder = FrameDecoder()
        conn: _Conn | None = None
        try:
            conn = await self._handshake(reader, writer, decoder)
            if conn is None:
                return
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    return
                for ftype, body in decoder.feed(chunk):
                    if await self._dispatch(conn, ftype, body):
                        return
        except ProtocolError as exc:
            try:
                writer.write(pack_error(str(exc)))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                if not writer.is_closing():
                    writer.write(encode_frame(FrameType.BYE))
                    await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()

    async def _handshake(self, reader, writer, decoder) -> _Conn | None:
        while True:
            chunk = await reader.read(4096)
            if not chunk:
                return None
            frames = decoder.feed(chunk)
            if not frames:
                continue
            ftype, body = frames[0]
            if ftype is not FrameType.HELLO:
                raise ProtocolError(f"expected HELLO, got {ftype.name}")
            hello = unpack_hello(body)
            if not self._authenticate(hello):
                self._metrics["auth_failures"].inc()
                writer.write(pack_error("authentication failed"))
                await writer.drain()
                writer.close()
                return None
            self._sessions += 1
            version = negotiate_version(hello)
            conn = _Conn(writer, str(hello["client_id"]), version)
            writer.write(
                pack_welcome(
                    f"s{self._sessions}",
                    self.max_inflight,
                    version=version if version > 1 else None,
                    max_batch=MAX_BATCH_RECORDS,
                )
            )
            await writer.drain()
            # A greedy client may pipeline DATA right behind HELLO.
            for extra_type, extra_body in frames[1:]:
                await self._dispatch(conn, extra_type, extra_body)
            return conn

    async def _dispatch(self, conn: _Conn, ftype: FrameType, body: bytes) -> bool:
        """Route one post-handshake frame; True means BYE (close)."""
        if ftype is FrameType.DATA:
            self._on_data(conn, body)
        elif ftype is FrameType.BATCH_DATA:
            self._on_batch_data(conn, body)
        elif ftype in (FrameType.ADD_STATIONS, FrameType.DROP_STATIONS):
            await self._on_control(conn, ftype, body)
        elif ftype is FrameType.CORRUPT:
            self._metrics["corrupt"].inc()
        elif ftype is FrameType.BYE:
            return True
        # Anything else from a client is ignorable noise.
        return False

    def _authenticate(self, hello: dict) -> bool:
        """Check HELLO credentials (constant-time on both paths)."""
        token = str(hello.get("token") or "")
        if self.auth_secret is not None:
            expected = sign_token(self.auth_secret, str(hello["client_id"]))
            return hmac.compare_digest(token, expected)
        if self.auth_token is not None:
            return hmac.compare_digest(token, self.auth_token)
        return True

    def _bucket(self, conn: _Conn) -> _TokenBucket:
        bucket = self._buckets.get(conn.client_id)
        if bucket is None:
            bucket = self._buckets[conn.client_id] = _TokenBucket(self.rate_burst)
        return bucket

    def _on_data(self, conn: _Conn, body: bytes) -> None:
        station, seq, timestamp, reading = unpack_data(body)
        self._metrics["frames"].inc()
        if not 0 <= station < self.n_stations:
            raise ProtocolError(f"station {station} out of range [0, {self.n_stations})")
        if self.rate_limit is not None:
            bucket = self._bucket(conn)
            if not bucket.take(self.rate_limit, self.rate_burst):
                # Over budget: BUSY, unacked — the client backs off for
                # the bucket's actual refill time and resends.
                self._metrics["rate_limited"].inc()
                self._metrics["busy"].inc()
                conn.send(
                    pack_busy(station, seq, bucket.retry_after(1.0, self.rate_limit))
                )
                return
        if conn.inflight >= self.max_inflight:
            self._metrics["busy"].inc()
            conn.send(pack_busy(station, seq))
            return
        item = ("data", conn, station, seq, reading, time.perf_counter())
        if not self._admit(item, 1):
            self._metrics["busy"].inc()
            conn.send(pack_busy(station, seq))

    def _on_batch_data(self, conn: _Conn, body: bytes) -> None:
        if conn.version < 2:
            raise ProtocolError("BATCH_DATA requires negotiated protocol v2")
        stations, seqs, _timestamps, readings = unpack_batch_data(body)
        n = int(stations.size)
        self._metrics["frames"].inc()
        self._metrics["batch_frames"].inc()
        self._metrics["batch_readings"].inc(n)
        if int(stations.min()) < 0 or int(stations.max()) >= self.n_stations:
            raise ProtocolError(f"batch station out of range [0, {self.n_stations})")
        if self.rate_limit is not None:
            bucket = self._bucket(conn)
            if not bucket.take_many(float(n), self.rate_limit, self.rate_burst):
                # All-or-nothing: a partial batch admission would force
                # per-reading bucket accounting back into the hot path.
                self._metrics["rate_limited"].inc(n)
                self._busy_batch(conn, stations, seqs)
                return
        if conn.inflight + n > self.max_inflight:
            self._busy_batch(conn, stations, seqs)
            return
        item = ("batch", conn, stations, seqs, readings, time.perf_counter())
        if not self._admit(item, n):
            self._busy_batch(conn, stations, seqs)

    def _busy_batch(self, conn: _Conn, stations: np.ndarray, seqs: np.ndarray) -> None:
        """Refuse a whole batch: one BATCH_ACK, every status BUSY."""
        self._metrics["busy"].inc()
        statuses = np.full(stations.size, int(AckStatus.BUSY), dtype=np.uint8)
        conn.send(pack_batch_ack(stations, seqs, statuses))

    def _admit(self, item: tuple, cost: int) -> bool:
        """Queue one ingest item (``cost`` readings) under backpressure.

        False means rejected (caller answers BUSY).  Under the shed
        policy the oldest queued *data* item is dropped instead — a
        control op at the queue head is applied on the spot, which
        preserves its ordering exactly (everything before it has
        already been applied).
        """
        if self._queue.full():
            if self.policy == "reject":
                return False
            while self._queue.full():
                victim = self._queue.get_nowait()
                if victim[0] == "control":
                    self._apply(victim)
                    continue
                # The victim is silently dropped — never acked, so its
                # sender retransmits it after backoff.
                victim[1].inflight -= self._cost(victim)
                self._metrics["shed"].inc(self._cost(victim))
                break
        item[1].inflight += cost
        self._queue.put_nowait(item)
        self._metrics["queue_depth"].set(float(self._queue.qsize()))
        return True

    @staticmethod
    def _cost(item: tuple) -> int:
        """Readings an ingest queue item holds against its conn's quota."""
        return int(item[2].size) if item[0] == "batch" else 1

    # ------------------------------------------------------------------
    # control plane

    async def _on_control(self, conn: _Conn, ftype: FrameType, body: bytes) -> None:
        if conn.version < 2:
            raise ProtocolError(f"{ftype.name} requires negotiated protocol v2")
        payload = unpack_control(body)
        cid = int(payload.get("cid", 0))
        op = "add" if ftype is FrameType.ADD_STATIONS else "drop"
        if not self._authorize_control(conn, payload):
            self._metrics["auth_failures"].inc()
            self._metrics["control_denied"].inc()
            conn.send(
                pack_control_ack(
                    cid, op, False, self.n_stations, "control authorization failed"
                )
            )
            return
        # Churn rides the ingest queue so it applies in order with the
        # data already admitted ahead of it.  ``put`` (not put_nowait)
        # may wait for space — control is rare and must not be shed.
        await self._queue.put(("control", conn, ftype, payload))
        self._metrics["queue_depth"].set(float(self._queue.qsize()))

    def _authorize_control(self, conn: _Conn, payload: dict) -> bool:
        """Check a control frame's HMAC credential (constant-time)."""
        token = str(payload.get("token") or "")
        if self.auth_secret is not None:
            expected = sign_control_token(self.auth_secret, conn.client_id)
            return hmac.compare_digest(token, expected)
        if self.auth_token is not None:
            return hmac.compare_digest(token, self.auth_token)
        return True

    # ------------------------------------------------------------------
    # consumer

    async def _consume(self) -> None:
        while True:
            item = await self._queue.get()
            self._apply(item)
            self._metrics["queue_depth"].set(float(self._queue.qsize()))

    def _apply(self, item: tuple) -> None:
        kind = item[0]
        if kind == "data":
            self._apply_data(*item[1:])
        elif kind == "batch":
            self._apply_batch(*item[1:])
        else:
            self._apply_control(*item[1:])

    def _apply_data(self, conn: _Conn, station, seq, reading, arrival) -> None:
        conn.inflight -= 1
        if station >= self.n_stations:
            # A drop applied ahead of this queued straggler ended its
            # station's timeline — terminal, the slot cannot be served.
            conn.send(pack_ack(station, seq, AckStatus.LATE))
            self._metrics["late"].inc()
            return
        outcome = self.reorder.offer(station, seq, reading, arrival=arrival)
        if outcome is Offer.OVERFLOW:
            self._metrics["busy"].inc()
            conn.send(pack_busy(station, seq))
        else:
            if outcome is Offer.ACCEPTED:
                self._metrics["accepted"].inc()
            elif outcome is Offer.DUPLICATE:
                self._metrics["duplicates"].inc()
            else:
                self._metrics["late"].inc()
            conn.send(pack_ack(station, seq, _OFFER_ACK[outcome]))
        self._drain_columns()

    def _apply_batch(self, conn: _Conn, stations, seqs, readings, arrival) -> None:
        conn.inflight -= int(stations.size)
        valid = stations < self.n_stations
        if valid.all():
            codes = self.reorder.offer_block(stations, seqs, readings, arrival=arrival)
        else:
            # Stations a drop renumbered away while this batch queued:
            # their timelines are over — terminal LATE, like the scalar
            # path's straggler handling.
            codes = np.full(stations.size, _CODE_LATE, dtype=np.uint8)
            idx = np.nonzero(valid)[0]
            if idx.size:
                codes[idx] = self.reorder.offer_block(
                    stations[idx], seqs[idx], readings[idx], arrival=arrival
                )
        tally = np.bincount(codes, minlength=len(OFFER_BY_CODE))
        accepted, duplicates, late, overflow = (int(c) for c in tally[:4])
        if accepted:
            self._metrics["accepted"].inc(accepted)
        if duplicates:
            self._metrics["duplicates"].inc(duplicates)
        if late:
            self._metrics["late"].inc(late)
        if overflow:
            self._metrics["busy"].inc(overflow)
        conn.send(pack_batch_ack(stations, seqs, _ACK_FOR_CODE[codes]))
        self._drain_columns()

    def _apply_control(self, conn: _Conn, ftype: FrameType, payload: dict) -> None:
        """Apply a queued churn op: engine, reorder window, partial block.

        Full blocks ahead of the op were already processed (it rides the
        same queue), so the churn lands exactly at the next unprocessed
        tick — the same boundary an engine-local ``add_stations``/
        ``drop_stations`` between two ``step_block`` calls would hit.
        """
        cid = int(payload.get("cid", 0))
        op = "add" if ftype is FrameType.ADD_STATIONS else "drop"
        try:
            if ftype is FrameType.ADD_STATIONS:
                n_new = int(payload["n_new"])
                thresholds = payload.get("thresholds")
                if thresholds is not None and not isinstance(thresholds, (int, float)):
                    thresholds = np.asarray(thresholds, dtype=np.float64)
                data_min = payload.get("data_min")
                if data_min is not None:
                    data_min = np.asarray(data_min, dtype=np.float64)
                data_max = payload.get("data_max")
                if data_max is not None:
                    data_max = np.asarray(data_max, dtype=np.float64)
                self.engine.add_stations(
                    n_new, thresholds=thresholds, data_min=data_min, data_max=data_max
                )
                self.reorder.add_stations(n_new)
                # Emitted-but-unprocessed columns predate the newcomers:
                # their slots serve as NaN missing.
                self._columns = [
                    (tick, np.concatenate([vals, np.full(n_new, np.nan)]), arr)
                    for tick, vals, arr in self._columns
                ]
            else:
                stations = np.unique(np.asarray(payload["stations"], dtype=np.int64))
                if (
                    stations.size == 0
                    or stations[0] < 0
                    or stations[-1] >= self.n_stations
                    or stations.size >= self.n_stations
                ):
                    raise ValueError(
                        f"stations to drop must be a non-empty strict subset of "
                        f"[0, {self.n_stations})"
                    )
                keep = np.setdiff1d(np.arange(self.n_stations, dtype=np.int64), stations)
                self.engine.drop_stations(stations)
                self.reorder.drop_stations(stations)
                self._columns = [
                    (tick, vals[keep].copy(), arr) for tick, vals, arr in self._columns
                ]
            self.n_stations = self.engine.n_stations
            self._metrics["control"].inc()
            conn.send(pack_control_ack(cid, op, True, self.n_stations))
        except Exception as exc:  # noqa: BLE001 — report to the client, keep serving
            self._metrics["control_denied"].inc()
            conn.send(pack_control_ack(cid, op, False, self.n_stations, str(exc)))

    def _drain_columns(self) -> None:
        self._columns.extend(self.reorder.drain())
        self._metrics["pending_ticks"].set(float(self.reorder.pending_ticks))
        while len(self._columns) >= self.block_size:
            self._process_block(self._columns[: self.block_size])
            del self._columns[: self.block_size]

    def _process_block(self, columns: list[tuple[int, np.ndarray, float]]) -> None:
        values = np.stack([col for _, col, _ in columns], axis=1)
        flags, scores, missing, mitigated = self.engine.step_block(values)
        done = time.perf_counter()
        for i, (tick, _, arrival) in enumerate(columns):
            self._served_ticks.append(tick)
            self._served_flags.append(flags[:, i])
            self._served_scores.append(scores[:, i])
            self._served_missing.append(missing[:, i])
            self._served_mitigated.append(mitigated[:, i])
            if arrival > 0.0:
                latency = max(0.0, done - arrival)
                self.ingest_latencies.append(latency)
                self._metrics["ingest_latency"].observe(latency)
        self._metrics["blocks"].inc()

    # ------------------------------------------------------------------
    # results

    def served(self) -> dict[str, np.ndarray]:
        """Everything decided so far, one column per processed tick.

        After a control-plane churn the fleet width differs across
        ticks; columns are padded at the *tail* to the widest width
        seen (flags/missing ``False``, scores/mitigated NaN) — a padded
        slot means the station did not exist at that tick.  Note a drop
        renumbers survivors, so row identities change at the churn
        boundary exactly as they do for the engine's ``drop_stations``.
        """

        def stack(cols: list[np.ndarray], dtype, fill) -> np.ndarray:
            if not cols:
                return np.empty((self.n_stations, 0), dtype=dtype)
            widths = {col.shape[0] for col in cols}
            if len(widths) == 1:
                return np.stack(cols, axis=1)
            out = np.full((max(widths), len(cols)), fill, dtype=dtype)
            for i, col in enumerate(cols):
                out[: col.shape[0], i] = col
            return out

        return {
            "ticks": np.asarray(self._served_ticks, dtype=np.int64),
            "flags": stack(self._served_flags, bool, False),
            "scores": stack(self._served_scores, np.float64, np.nan),
            "missing": stack(self._served_missing, bool, False),
            "mitigated": stack(self._served_mitigated, np.float64, np.nan),
        }
