"""Live ingestion: the wire between sensor fleets and the detector.

Everything before this package assumed readings arrive as a tidy
``(n_stations, n_ticks)`` matrix.  Real fleets deliver them over a
network that reorders, duplicates, delays, corrupts, and drops — so
this package provides the serving layer:

* :mod:`~repro.serve.protocol` — length-prefixed, CRC-checked frames
  carrying ``(station, seq, timestamp, reading)``; corruption is
  detected per-frame without losing stream sync.  Protocol **v2**
  (negotiated in HELLO/WELCOME; v1 peers interoperate unchanged) adds
  binary BATCH_DATA/BATCH_ACK frames that move whole blocks per frame,
  and an HMAC-gated control plane (ADD_STATIONS/DROP_STATIONS) for
  live fleet churn.
* :mod:`~repro.serve.reorder` — re-sequencing with a lateness
  watermark, dedup by ``(station, seq)``, u32 seq unwrapping, and
  bounded-memory backpressure.
* :mod:`~repro.serve.server` — :class:`IngestionServer`: asyncio
  listener → bounded queue → reorder buffer → block batcher →
  ``engine.step_block``; BUSY backpressure (reject-new or shed-oldest),
  SIGTERM checkpointing, bit-exact crash recovery.
* :mod:`~repro.serve.client` — :class:`IngestClient`: idempotent
  resend-by-seq, jittered exponential backoff, reconnect, timeouts.
* :mod:`~repro.serve.chaos` — :class:`ChaosTransport`: seeded
  drop/duplicate/delay/reorder/corrupt/disconnect fault injection for
  soak tests.

Quickstart::

    from repro.serve import IngestionServer, IngestClient

    server = IngestionServer(engine, block_size=16)   # missing="impute"
    await server.start()

    client = IngestClient(port=server.port, client_id="station-0")
    await client.connect()
    for tick, reading in enumerate(readings):
        await client.send(station=0, seq=tick, reading=reading)
    await client.drain()

The guarantee worth the ceremony: the served flags/scores/mitigated
outputs are bit-exact against an offline
:meth:`~repro.stream.engine.StreamReplayEngine.run` over the
effectively-delivered readings (undelivered slots as NaN missing) —
chaos on the wire changes *which* readings arrive, never what the
pipeline decides about the ones that do.
"""

from repro.serve.chaos import ChaosTransport
from repro.serve.client import ControlError, DeliveryError, IngestClient, TcpTransport
from repro.serve.protocol import (
    MAX_BATCH_RECORDS,
    PROTOCOL_VERSIONS,
    SEQ_MOD,
    AckStatus,
    FrameDecoder,
    FrameType,
    ProtocolError,
    sign_control_token,
    sign_token,
)
from repro.serve.reorder import Offer, ReorderBuffer
from repro.serve.server import IngestionServer

__all__ = [
    "AckStatus",
    "ChaosTransport",
    "ControlError",
    "DeliveryError",
    "FrameDecoder",
    "FrameType",
    "IngestClient",
    "IngestionServer",
    "MAX_BATCH_RECORDS",
    "Offer",
    "PROTOCOL_VERSIONS",
    "ProtocolError",
    "ReorderBuffer",
    "SEQ_MOD",
    "TcpTransport",
    "sign_control_token",
    "sign_token",
]
