"""The ingestion service's metric families, in one place.

The server and the obs golden-exposition test must agree byte-for-byte
on metric names, help strings, and histogram buckets — so both import
this helper instead of each hand-rolling the registrations.
"""

from __future__ import annotations

#: Ingest→flag latency buckets: sub-millisecond through multi-second,
#: wide enough for a watermark-delayed tick under load.
INGEST_LATENCY_BUCKETS = (0.001, 0.005, 0.025, 0.1, 0.5, 2.0, 10.0)


def ingest_metrics(reg) -> dict:
    """Register (or fetch) every serve metric family on ``reg``."""
    return {
        "frames": reg.counter(
            "repro_serve_frames_total",
            help="DATA frames received (before dedup/watermark).",
        ),
        "batch_frames": reg.counter(
            "repro_serve_batch_frames_total",
            help="BATCH_DATA frames received (protocol v2).",
        ),
        "batch_readings": reg.counter(
            "repro_serve_batch_readings_total",
            help="Readings carried by BATCH_DATA frames.",
        ),
        "control": reg.counter(
            "repro_serve_control_total",
            help="Control-plane churn ops applied (ADD/DROP_STATIONS).",
        ),
        "control_denied": reg.counter(
            "repro_serve_control_denied_total",
            help="Control-plane ops refused (bad HMAC or invalid request).",
        ),
        "corrupt": reg.counter(
            "repro_serve_corrupt_frames_total",
            help="Frames whose CRC check failed (not acked; client resends).",
        ),
        "accepted": reg.counter(
            "repro_serve_accepted_total",
            help="Readings filed into the reorder buffer.",
        ),
        "duplicates": reg.counter(
            "repro_serve_duplicates_total",
            help="Readings already delivered (retries, network dups).",
        ),
        "late": reg.counter(
            "repro_serve_late_total",
            help="Readings past the watermark, dropped as missing.",
        ),
        "shed": reg.counter(
            "repro_serve_shed_total",
            help="Queued readings shed under the shed-oldest policy.",
        ),
        "busy": reg.counter(
            "repro_serve_busy_total",
            help="BUSY frames sent (backpressure: queue full or quota).",
        ),
        "rate_limited": reg.counter(
            "repro_serve_rate_limited_total",
            help="DATA frames refused by the per-client token bucket.",
        ),
        "auth_failures": reg.counter(
            "repro_serve_auth_failures_total",
            help="HELLO handshakes rejected for a bad or missing token.",
        ),
        "queue_depth": reg.gauge(
            "repro_serve_queue_depth",
            help="Readings waiting in the bounded ingest queue.",
        ),
        "pending_ticks": reg.gauge(
            "repro_serve_pending_ticks",
            help="Tick span buffered in the reorder window.",
        ),
        "ingest_latency": reg.histogram(
            "repro_serve_ingest_latency_seconds",
            help="First frame arrival to flag decision, per emitted tick.",
            buckets=INGEST_LATENCY_BUCKETS,
        ),
        "blocks": reg.counter(
            "repro_serve_blocks_total",
            help="Blocks fed through the streaming detector.",
        ),
    }
