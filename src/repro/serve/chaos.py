"""Seeded fault injection between client and server.

:class:`ChaosTransport` wraps any transport with the
:class:`~repro.serve.client.TcpTransport` interface and mangles
*outgoing data frames* — scalar ``DATA`` and protocol-v2
``BATCH_DATA`` alike — with independently seeded probabilities, the
failure modes a sensor fleet's uplink actually exhibits:

=============== ====================================================
``drop``        frame vanishes (client retries after backoff)
``duplicate``   frame sent twice (server dedups by (station, seq))
``delay``       frame held back 1..\\ ``max_delay`` later sends — the
                straggler generator (arrives out of order, maybe LATE)
``reorder``     frame swapped with the next one sent
``corrupt``     one byte past the header flipped — usually a CRC
                failure (frame ignored, resend delivers it); flipping a
                large BATCH_DATA frame's *type* byte instead makes the
                decoder reject the length as structurally implausible,
                tearing the session down — the client re-dials and
                resends, so the soak exercises both recovery paths
``disconnect``  connection torn down mid-stream (client re-dials,
                re-HELLOs, resends everything unacked)
=============== ====================================================

Handshake and control frames pass through untouched — faulting HELLO
only retests the connect loop, not the data path.  All randomness comes
from one seeded generator, so a soak run is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.serve.protocol import FrameType, MAGIC


class ChaosTransport:
    """Wrap ``inner`` and interfere with its outgoing data frames."""

    def __init__(
        self,
        inner,
        *,
        drop: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        disconnect: float = 0.0,
        max_delay: int = 6,
        seed: int = 0,
    ) -> None:
        for name, rate in (
            ("drop", drop),
            ("duplicate", duplicate),
            ("delay", delay),
            ("reorder", reorder),
            ("corrupt", corrupt),
            ("disconnect", disconnect),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if max_delay < 1:
            raise ValueError(f"max_delay must be >= 1, got {max_delay}")
        self.inner = inner
        self.drop = drop
        self.duplicate = duplicate
        self.delay = delay
        self.reorder = reorder
        self.corrupt = corrupt
        self.disconnect = disconnect
        self.max_delay = max_delay
        self._rng = np.random.default_rng(seed)
        # (frame, remaining-sends-before-release) for delayed frames.
        self._held: list[list] = []
        self._swap: bytes | None = None
        self.stats = {
            "sent": 0,
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "reordered": 0,
            "corrupted": 0,
            "disconnects": 0,
        }

    # ------------------------------------------------------------------
    # transport interface

    @property
    def closed(self) -> bool:
        return self.inner.closed

    async def connect(self, timeout: float = 5.0) -> None:
        # A fresh session starts clean: frames held by the old one are
        # gone (the client's retry loop re-earns them).
        self._held.clear()
        self._swap = None
        await self.inner.connect(timeout)

    async def drain(self) -> None:
        await self.inner.drain()

    async def read(self, timeout: float) -> bytes:
        return await self.inner.read(timeout)

    def close(self) -> None:
        self.inner.close()

    # ------------------------------------------------------------------
    # fault injection

    @staticmethod
    def _is_data(frame: bytes) -> bool:
        return (
            len(frame) > 5
            and frame[0] == MAGIC
            and frame[5] in (FrameType.DATA, FrameType.BATCH_DATA)
        )

    def send(self, frame: bytes) -> None:
        if not self._is_data(frame):
            self.inner.send(frame)
            return
        self._tick_held()
        roll = self._rng.random
        if roll() < self.disconnect:
            self.stats["disconnects"] += 1
            self._held.clear()
            self._swap = None
            self.inner.close()
            raise ConnectionError("chaos: connection torn down")
        if roll() < self.drop:
            self.stats["dropped"] += 1
            return
        if roll() < self.delay:
            self.stats["delayed"] += 1
            hold = int(self._rng.integers(1, self.max_delay + 1))
            self._held.append([frame, hold])
            return
        if roll() < self.reorder:
            self.stats["reordered"] += 1
            previous, self._swap = self._swap, frame
            if previous is not None:
                self._send_now(previous)
            return
        if self._swap is not None:
            held, self._swap = self._swap, None
            self._send_now(frame)
            self._send_now(held)
            return
        self._send_now(frame)

    def _send_now(self, frame: bytes) -> None:
        if self._rng.random() < self.corrupt:
            self.stats["corrupted"] += 1
            frame = self._flip_byte(frame)
        self.inner.send(frame)
        self.stats["sent"] += 1
        if self._rng.random() < self.duplicate:
            self.stats["duplicated"] += 1
            self.inner.send(frame)

    def _flip_byte(self, frame: bytes) -> bytes:
        # Only bytes past magic+length are fair game: the frame must
        # stay *structurally* parseable so the server sees a CRC
        # failure, not a desynced stream.
        index = int(self._rng.integers(5, len(frame)))
        mangled = bytearray(frame)
        mangled[index] ^= 0xFF
        return bytes(mangled)

    def _tick_held(self) -> None:
        """Age delayed frames; release the ones whose hold expired."""
        ready: list[bytes] = []
        keep: list[list] = []
        for entry in self._held:
            entry[1] -= 1
            if entry[1] <= 0:
                ready.append(entry[0])
            else:
                keep.append(entry)
        self._held = keep
        for frame in ready:
            self._send_now(frame)
