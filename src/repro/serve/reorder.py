"""Reorder buffer: out-of-order frames back into a tick timeline.

The wire delivers ``(station, seq, reading)`` triples in whatever order
the network feels like; the detector consumes dense ``(n_stations,)``
tick columns in strict tick order.  :class:`ReorderBuffer` bridges the
two:

* **Re-sequencing.** Each accepted reading is filed under its absolute
  tick index.  Ticks become *flushable* once they fall at or below the
  **watermark** — ``highest_seen_tick - lateness`` — i.e. once the fleet
  has collectively advanced ``lateness`` ticks past them.  Flushing
  emits dense columns in order; a station that never delivered its
  reading for an emitted tick contributes NaN, which the detector's
  ``missing="impute"`` path repairs downstream.
* **Deduplication.** A second copy of a ``(station, seq)`` already filed
  (retry, chaos duplicate) is reported :data:`Offer.DUPLICATE`.
* **Lateness.** A frame for a tick that has already been emitted is
  :data:`Offer.LATE` — dropped, its slot already served as missing.
* **Seq unwrapping.** Wire seqs live in u32 and wrap at ``2**32``.  Each
  station's raw seq is unwrapped against its own last absolute position
  (nearest-interpretation with a ``2**31`` midpoint), so a fleet running
  long enough to wrap keeps a monotone internal timeline.
* **Backpressure.** At most ``capacity`` ticks may sit between the next
  tick to emit and the newest pending tick; an offer that would stretch
  the window further is :data:`Offer.OVERFLOW` — the server answers
  BUSY and the client backs off and retries.

The buffer is plain sync code with O(pending) state so it can be
checkpointed (:meth:`state_dict`/:meth:`load_state_dict`) alongside the
detector for bit-exact crash recovery.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.serve.protocol import SEQ_MOD

_HALF = SEQ_MOD // 2


class Offer(Enum):
    """Outcome of offering one reading to the buffer."""

    ACCEPTED = "accepted"
    DUPLICATE = "duplicate"
    LATE = "late"
    OVERFLOW = "overflow"


#: Dense uint8 encoding of :class:`Offer` for the vectorized batch path:
#: ``offer_block`` returns codes indexing this tuple.
OFFER_BY_CODE = (Offer.ACCEPTED, Offer.DUPLICATE, Offer.LATE, Offer.OVERFLOW)
_CODE = {offer: np.uint8(i) for i, offer in enumerate(OFFER_BY_CODE)}


class _Pending:
    __slots__ = ("values", "filled", "first_arrival")

    def __init__(self, n_stations: int, arrival: float) -> None:
        self.values = np.full(n_stations, np.nan)
        self.filled = np.zeros(n_stations, dtype=bool)
        self.first_arrival = arrival


class ReorderBuffer:
    """Re-sequence, dedup, and watermark a fleet's out-of-order frames.

    Parameters
    ----------
    n_stations:
        Fleet width; station ids on the wire are ``0..n_stations-1``.
    lateness:
        Watermark lag in ticks.  Tick ``t`` is held until some station
        reports a tick ``>= t + lateness`` (or a flush forces it out).
        ``0`` means no reordering tolerance: a tick is flushable as
        soon as any frame for it (or a newer tick) arrives.
    capacity:
        Maximum span of buffered ticks (next-to-emit .. newest pending).
        Offers beyond it overflow — the backpressure signal.
    start:
        Absolute tick index the timeline starts at (tick of the first
        expected reading).  Lets tests park the buffer just below the
        u32 wrap point.
    """

    #: Telemetry tallies restart from zero on resume by design — the obs
    #: layer owns cumulative counters (RPR001).
    _EPHEMERAL = ("counts",)

    def __init__(
        self,
        n_stations: int,
        *,
        lateness: int = 8,
        capacity: int = 1024,
        start: int = 0,
    ) -> None:
        if n_stations < 1:
            raise ValueError(f"n_stations must be >= 1, got {n_stations}")
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        if capacity < max(1, lateness + 1):
            raise ValueError(
                f"capacity must cover the watermark lag (>= {max(1, lateness + 1)}), "
                f"got {capacity}"
            )
        self.n_stations = n_stations
        self.lateness = lateness
        self.capacity = capacity
        #: Next absolute tick index to emit.
        self.next_emit = start
        #: Highest absolute tick index seen so far (start - 1 when empty).
        self.high = start - 1
        #: Per-station last absolute tick filed (-1 sentinel: none yet).
        self.last_seen = np.full(n_stations, -1, dtype=np.int64)
        self._pending: dict[int, _Pending] = {}
        # Telemetry tallies (mirrored into repro.obs by the server).
        self.counts = {offer: 0 for offer in Offer}

    # ------------------------------------------------------------------
    # ingest

    def _unwrap(self, station: int, raw_seq: int) -> int:
        """Absolute tick index for a wire seq, nearest-interpretation.

        The reference point is the station's own last absolute tick (or
        the global ``next_emit`` before its first frame).  A forward
        delta under ``2**31`` moves forward; anything else is read as
        the (smaller) backward step — so duplicates and stragglers keep
        their original tick across a u32 wrap instead of landing one
        full period in the future.
        """
        ref = self.last_seen[station]
        if ref < 0:
            ref = self.next_emit
        delta = (raw_seq - ref) % SEQ_MOD
        if delta < _HALF:
            return int(ref + delta)
        return int(ref - (SEQ_MOD - delta))

    def offer(self, station: int, raw_seq: int, reading: float, arrival: float = 0.0) -> Offer:
        """File one reading; returns the ack the sender should see.

        ``arrival`` is a caller-supplied clock reading used for
        ingest-latency accounting of the tick's *first* frame.
        """
        if not 0 <= station < self.n_stations:
            raise ValueError(f"station {station} out of range [0, {self.n_stations})")
        tick = self._unwrap(station, raw_seq)
        if tick < self.next_emit:
            # Already emitted (as a value or as NaN-missing) — too late.
            self.counts[Offer.LATE] += 1
            return Offer.LATE
        entry = self._pending.get(tick)
        if entry is not None and entry.filled[station]:
            self.counts[Offer.DUPLICATE] += 1
            return Offer.DUPLICATE
        if entry is None:
            if tick - self.next_emit >= self.capacity:
                self.counts[Offer.OVERFLOW] += 1
                return Offer.OVERFLOW
            entry = self._pending[tick] = _Pending(self.n_stations, arrival)
        entry.values[station] = reading
        entry.filled[station] = True
        if tick > self.high:
            self.high = tick
        if tick > self.last_seen[station]:
            self.last_seen[station] = tick
        self.counts[Offer.ACCEPTED] += 1
        return Offer.ACCEPTED

    def offer_block(
        self,
        stations: np.ndarray,
        raw_seqs: np.ndarray,
        readings: np.ndarray,
        arrival: float = 0.0,
    ) -> np.ndarray:
        """File many readings at once; per-reading codes into :data:`OFFER_BY_CODE`.

        Exactly equivalent to calling :meth:`offer` once per reading in
        order — the batch tests assert this property — but the unwrap,
        watermark, dedup, and filing steps run vectorized per *tick
        group* instead of per reading.  When the batch mentions the same
        station twice, later entries depend on how earlier ones filed
        (unwrap reference, dedup), so such batches take the scalar path.
        """
        stations = np.asarray(stations, dtype=np.int64)
        raw_seqs = np.asarray(raw_seqs, dtype=np.int64)
        readings = np.asarray(readings, dtype=np.float64)
        if not (stations.shape == raw_seqs.shape == readings.shape and stations.ndim == 1):
            raise ValueError("stations, raw_seqs, readings must be equal-length 1-D arrays")
        n = stations.size
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        if int(stations.min()) < 0 or int(stations.max()) >= self.n_stations:
            raise ValueError(f"station out of range [0, {self.n_stations})")
        if np.unique(stations).size != n:
            codes = np.empty(n, dtype=np.uint8)
            for i in range(n):
                codes[i] = _CODE[
                    self.offer(
                        int(stations[i]), int(raw_seqs[i]), float(readings[i]), arrival=arrival
                    )
                ]
            return codes
        # Unique stations: no offer in the batch can change another's
        # unwrap reference or dedup slot, so the outcome is independent
        # of processing order and each step vectorizes.
        ref = self.last_seen[stations]
        ref = np.where(ref < 0, self.next_emit, ref)
        delta = np.mod(raw_seqs - ref, SEQ_MOD)
        ticks = np.where(delta < _HALF, ref + delta, ref - (SEQ_MOD - delta))
        codes = np.empty(n, dtype=np.uint8)
        late = ticks < self.next_emit
        codes[late] = _CODE[Offer.LATE]
        live = np.nonzero(~late)[0]
        for tick in np.unique(ticks[live]):
            idx = live[ticks[live] == tick]
            tick = int(tick)
            entry = self._pending.get(tick)
            if entry is None:
                if tick - self.next_emit >= self.capacity:
                    codes[idx] = _CODE[Offer.OVERFLOW]
                    continue
                entry = self._pending[tick] = _Pending(self.n_stations, arrival)
            group = stations[idx]
            dup = entry.filled[group]
            codes[idx[dup]] = _CODE[Offer.DUPLICATE]
            fresh = idx[~dup]
            accept = stations[fresh]
            entry.values[accept] = readings[fresh]
            entry.filled[accept] = True
            codes[fresh] = _CODE[Offer.ACCEPTED]
            if tick > self.high:
                self.high = tick
            self.last_seen[accept] = np.maximum(self.last_seen[accept], tick)
        tally = np.bincount(codes, minlength=len(OFFER_BY_CODE))
        for i, offer in enumerate(OFFER_BY_CODE):
            self.counts[offer] += int(tally[i])
        return codes

    # ------------------------------------------------------------------
    # churn (the wire control plane resizes the buffer alongside the
    # engine so in-flight ticks stay consistent with the fleet width)

    def add_stations(self, n_new: int) -> None:
        """Grow the fleet width; newcomers have no history.

        Pending (emitted-later) ticks gain NaN slots for the newcomers —
        they had not joined when those ticks were in flight, so their
        slots serve as missing, exactly like an engine-local
        ``add_stations`` between two ``run`` calls.
        """
        if n_new < 1:
            raise ValueError(f"n_new must be >= 1, got {n_new}")
        self.n_stations += int(n_new)
        self.last_seen = np.concatenate(
            [self.last_seen, np.full(n_new, -1, dtype=np.int64)]
        )
        for entry in self._pending.values():
            entry.values = np.concatenate([entry.values, np.full(n_new, np.nan)])
            entry.filled = np.concatenate([entry.filled, np.zeros(n_new, dtype=bool)])

    def drop_stations(self, stations: np.ndarray) -> None:
        """Shrink the fleet width; survivors renumber compactly.

        Same renumbering as the engine's ``drop_stations`` (survivor
        order preserved), so wire station ids keep matching engine rows.
        Pending ticks lose the dropped rows — those stations' timelines
        end at the churn point.
        """
        stations = np.unique(np.asarray(stations, dtype=np.int64))
        if stations.size == 0:
            raise ValueError("no stations to drop")
        if stations[0] < 0 or stations[-1] >= self.n_stations:
            raise ValueError(f"station to drop out of range [0, {self.n_stations})")
        if stations.size >= self.n_stations:
            raise ValueError("cannot drop every station")
        keep = np.setdiff1d(np.arange(self.n_stations, dtype=np.int64), stations)
        self.n_stations = int(keep.size)
        self.last_seen = self.last_seen[keep].copy()
        for entry in self._pending.values():
            entry.values = entry.values[keep].copy()
            entry.filled = entry.filled[keep].copy()

    # ------------------------------------------------------------------
    # emit

    @property
    def watermark(self) -> int:
        """Highest tick currently eligible for emission."""
        return self.high - self.lateness

    @property
    def pending_ticks(self) -> int:
        """Span of the buffered window (0 when fully drained)."""
        return max(0, self.high - self.next_emit + 1)

    def drain(self) -> list[tuple[int, np.ndarray, float]]:
        """Emit every tick at or below the watermark, in order.

        Returns ``(tick, values, first_arrival)`` triples; stations that
        never delivered contribute NaN.  A tick nobody mentioned at all
        (a gap in the timeline) emits as an all-NaN column with the
        arrival clock of the frame that advanced the watermark past it
        (0.0 if untracked).
        """
        return self._emit_upto(self.watermark)

    def flush(self) -> list[tuple[int, np.ndarray, float]]:
        """Emit everything buffered, watermark be damned (shutdown/EOF)."""
        return self._emit_upto(self.high)

    def _emit_upto(self, last: int) -> list[tuple[int, np.ndarray, float]]:
        out: list[tuple[int, np.ndarray, float]] = []
        while self.next_emit <= last:
            tick = self.next_emit
            entry = self._pending.pop(tick, None)
            if entry is None:
                out.append((tick, np.full(self.n_stations, np.nan), 0.0))
            else:
                out.append((tick, entry.values, entry.first_arrival))
            self.next_emit = tick + 1
        return out

    # ------------------------------------------------------------------
    # checkpoint

    def state_dict(self) -> dict[str, np.ndarray]:
        ticks = np.asarray(sorted(self._pending), dtype=np.int64)
        values = np.stack(
            [self._pending[t].values for t in ticks], axis=1
        ) if len(ticks) else np.empty((self.n_stations, 0))
        filled = np.stack(
            [self._pending[t].filled for t in ticks], axis=1
        ) if len(ticks) else np.empty((self.n_stations, 0), dtype=bool)
        arrivals = np.asarray([self._pending[t].first_arrival for t in ticks], dtype=np.float64)
        return {
            "config": np.asarray([self.n_stations, self.lateness, self.capacity], dtype=np.int64),
            "cursor": np.asarray([self.next_emit, self.high], dtype=np.int64),
            "last_seen": self.last_seen.copy(),
            "pending_ticks_idx": ticks,
            "pending_values": values,
            "pending_filled": filled,
            "pending_arrivals": arrivals,
        }

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        config = np.asarray(state["config"], dtype=np.int64)
        if int(config[0]) != self.n_stations:
            raise ValueError(
                f"checkpointed reorder buffer has {int(config[0])} stations, "
                f"this one has {self.n_stations}"
            )
        self.lateness = int(config[1])
        self.capacity = int(config[2])
        cursor = np.asarray(state["cursor"], dtype=np.int64)
        self.next_emit = int(cursor[0])
        self.high = int(cursor[1])
        self.last_seen = np.asarray(state["last_seen"], dtype=np.int64).copy()
        self._pending = {}
        ticks = np.asarray(state["pending_ticks_idx"], dtype=np.int64)
        values = np.asarray(state["pending_values"], dtype=np.float64)
        filled = np.asarray(state["pending_filled"], dtype=bool)
        arrivals = np.asarray(state["pending_arrivals"], dtype=np.float64)
        for i, tick in enumerate(ticks):
            entry = _Pending(self.n_stations, float(arrivals[i]))
            entry.values = values[:, i].copy()
            entry.filled = filled[:, i].copy()
            self._pending[int(tick)] = entry
