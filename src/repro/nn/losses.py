"""Loss functions with analytic gradients.

The paper trains both the forecaster and the autoencoder with mean
squared error; MAE and Huber are provided for the robustness ablations.
Losses reduce with a *mean over every element* (Keras convention), and
``gradient`` returns dL/dy_pred with the same shape as the prediction.

Precision: losses compute in the prediction's dtype (so a float32 model
backpropagates float32 gradients with no up/down casts in the hot path),
but scalar reductions always accumulate in float64 for stable reporting.
"""

from __future__ import annotations

import numpy as np


class Loss:
    """Base class: scalar ``__call__`` plus elementwise ``gradient``."""

    name = "loss"

    def __call__(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        y_pred = np.asarray(y_pred)
        if y_pred.dtype not in (np.float32, np.float64):
            y_pred = np.asarray(y_pred, dtype=np.float64)  # reprolint: disable=RPR002
        y_true = np.asarray(y_true, dtype=y_pred.dtype)
        if y_true.shape != y_pred.shape:
            raise ValueError(
                f"y_true shape {y_true.shape} != y_pred shape {y_pred.shape}"
            )
        return y_true, y_pred

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class MeanSquaredError(Loss):
    """``mean((y_true - y_pred)^2)`` over all elements."""

    name = "mse"

    def __call__(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        y_true, y_pred = self._validate(y_true, y_pred)
        diff = y_pred - y_true
        return float(np.mean(diff * diff, dtype=np.float64))  # reprolint: disable=RPR002

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        y_true, y_pred = self._validate(y_true, y_pred)
        return 2.0 * (y_pred - y_true) / y_true.size


class MeanAbsoluteError(Loss):
    """``mean(|y_true - y_pred|)``; subgradient 0 at exact equality."""

    name = "mae"

    def __call__(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        y_true, y_pred = self._validate(y_true, y_pred)
        return float(np.mean(np.abs(y_pred - y_true), dtype=np.float64))  # reprolint: disable=RPR002

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        y_true, y_pred = self._validate(y_true, y_pred)
        return np.sign(y_pred - y_true) / y_true.size


class Huber(Loss):
    """Huber loss: quadratic within ``delta`` of the target, linear outside."""

    name = "huber"

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError(f"delta must be > 0, got {delta}")
        self.delta = float(delta)

    def __call__(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        y_true, y_pred = self._validate(y_true, y_pred)
        diff = y_pred - y_true
        abs_diff = np.abs(diff)
        quadratic = 0.5 * diff * diff
        linear = self.delta * (abs_diff - 0.5 * self.delta)
        loss = np.mean(  # reprolint: disable=RPR002 -- float64 reduction by design
            np.where(abs_diff <= self.delta, quadratic, linear), dtype=np.float64
        )
        return float(loss)

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        y_true, y_pred = self._validate(y_true, y_pred)
        diff = y_pred - y_true
        clipped = np.clip(diff, -self.delta, self.delta)
        return clipped / y_true.size


_REGISTRY: dict[str, type[Loss]] = {
    "mse": MeanSquaredError,
    "mean_squared_error": MeanSquaredError,
    "mae": MeanAbsoluteError,
    "mean_absolute_error": MeanAbsoluteError,
    "huber": Huber,
}


def get(name_or_loss: str | Loss) -> Loss:
    """Resolve a loss by name, or pass an instance through."""
    if isinstance(name_or_loss, Loss):
        return name_or_loss
    try:
        return _REGISTRY[name_or_loss]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown loss {name_or_loss!r}; known: {known}") from None
