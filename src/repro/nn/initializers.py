"""Weight initialisers for the numpy neural-network substrate.

These mirror the Keras defaults used (implicitly) by the paper's models:
``glorot_uniform`` for kernels, ``orthogonal`` for recurrent kernels and
``zeros`` for biases (with the LSTM forget-gate bias set to one, handled
inside the LSTM layer itself).

Every initialiser takes an explicit :class:`numpy.random.Generator` so
weight initialisation is reproducible under the experiment master seed,
and an optional ``dtype`` (default: the active precision policy).  The
random draws themselves always happen in float64 so the *pattern* of an
initialisation is identical under every policy; only the final cast
differs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.nn import policy

Initializer = Callable[..., np.ndarray]


def _finish(values: np.ndarray, dtype: object | None) -> np.ndarray:
    return np.asarray(values, dtype=policy.resolve_dtype(dtype))


def zeros(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """All-zeros tensor (bias default)."""
    del rng
    return np.zeros(shape, dtype=policy.resolve_dtype(dtype))


def ones(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """All-ones tensor."""
    del rng
    return np.ones(shape, dtype=policy.resolve_dtype(dtype))


def constant(value: float) -> Initializer:
    """Initialiser factory producing a constant-filled tensor."""

    def _init(
        shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
    ) -> np.ndarray:
        del rng
        return np.full(shape, float(value), dtype=policy.resolve_dtype(dtype))

    return _init


def random_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """Uniform in [-0.05, 0.05] (Keras ``RandomUniform`` default)."""
    return _finish(rng.uniform(-0.05, 0.05, size=shape), dtype)


def random_normal(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """Normal with stddev 0.05 (Keras ``RandomNormal`` default)."""
    return _finish(rng.normal(0.0, 0.05, size=shape), dtype)


def glorot_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """Glorot/Xavier uniform: U(-l, l) with ``l = sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _finish(rng.uniform(-limit, limit, size=shape), dtype)


def glorot_normal(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    stddev = np.sqrt(2.0 / (fan_in + fan_out))
    return _finish(rng.normal(0.0, stddev, size=shape), dtype)


def he_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """He uniform: U(-l, l) with ``l = sqrt(6 / fan_in)`` (relu-friendly)."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _finish(rng.uniform(-limit, limit, size=shape), dtype)


def he_normal(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """He normal: N(0, 2 / fan_in)."""
    fan_in, _ = _fans(shape)
    return _finish(rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape), dtype)


def orthogonal(
    shape: tuple[int, ...], rng: np.random.Generator, dtype: object | None = None
) -> np.ndarray:
    """(Semi-)orthogonal matrix via QR of a Gaussian (recurrent kernels).

    For non-square shapes the result has orthonormal rows or columns,
    whichever fit.  Only 2-D shapes are supported.
    """
    if len(shape) != 2:
        raise ValueError(f"orthogonal initialiser requires a 2-D shape, got {shape}")
    rows, cols = shape
    size = max(rows, cols)
    gaussian = rng.normal(0.0, 1.0, size=(size, size))
    q, r = np.linalg.qr(gaussian)
    # Sign correction makes the distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    # Copy before the cast: a matching-dtype view would pin the full
    # (size, size) QR matrix in memory for the life of the weight.
    return _finish(q[:rows, :cols].copy(), dtype)


_REGISTRY: dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "random_uniform": random_uniform,
    "random_normal": random_normal,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def get(name_or_fn: str | Initializer) -> Initializer:
    """Resolve an initialiser by name, or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown initializer {name_or_fn!r}; known: {known}") from None


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense/recurrent kernel shapes."""
    if len(shape) < 1:
        raise ValueError("initialiser shape must have at least one dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    return shape[-2] * receptive, shape[-1] * receptive
