"""Sequential model: the training loop of the numpy substrate.

API intentionally mirrors the Keras subset the paper uses::

    model = Sequential([
        LSTM(50),
        Dense(10, activation="relu"),
        Dense(1),
    ])
    model.compile(optimizer=Adam(0.001), loss="mse")
    history = model.fit(x, y, epochs=10, batch_size=32, seed=7)
    predictions = model.predict(x_test)

All stochasticity (weight init, batch shuffling, dropout) derives from
the seed given to :meth:`Sequential.build` / :meth:`Sequential.fit`, so
federated experiments are bit-reproducible.

Precision & allocation discipline: the model's compute dtype is fixed at
build time (``dtype=`` argument, else the global policy — float32 by
default).  ``fit`` casts the dataset once up front, gathers shuffled
mini-batches into reusable batch buffers with ``np.take(..., out=...)``,
and ``predict`` writes each forward chunk straight into one preallocated
output array — the steady-state training loop performs no per-batch
dataset copies or per-chunk concatenations.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.nn import backend as backends
from repro.nn import losses as losses_module
from repro.nn import optimizers as optimizers_module
from repro.nn import policy
from repro.nn.callbacks import Callback, History
from repro.nn.layers.base import Layer, Variable
from repro.utils.rng import SeedLike, as_generator


class Sequential:
    """A linear stack of layers trained with mini-batch gradient descent."""

    def __init__(
        self,
        layers: list[Layer] | None = None,
        name: str = "sequential",
        dtype: object | None = None,
        backend: object | None = None,
    ) -> None:
        self.name = name
        self.layers: list[Layer] = []
        self.built = False
        self.stop_training = False
        self.optimizer = None
        self.loss = None
        self._input_shape: tuple[int, ...] | None = None
        self._dtype_request = dtype
        self._dtype: np.dtype | None = None
        self._backend: object | None = backend
        for layer in layers or []:
            self.add(layer)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, layer: Layer) -> None:
        """Append a layer; must be called before :meth:`build`."""
        if self.built:
            raise RuntimeError("cannot add layers after the model is built")
        if not isinstance(layer, Layer):
            raise TypeError(f"expected a Layer, got {type(layer).__name__}")
        if self._backend is not None:
            layer.backend = self._backend
        self.layers.append(layer)

    def set_backend(self, backend: object | None) -> None:
        """Pin this model (and every layer) to a compute backend.

        ``backend`` is a registered name, a Backend instance, or ``None``
        to return to the runtime resolution order (process default >
        ``REPRO_BACKEND`` > numpy).  A per-model backend beats the
        process-wide default; it is runtime configuration only and is
        never serialized with the model.
        """
        self._backend = backend
        for layer in self.layers:
            layer.backend = backend

    @property
    def backend(self) -> object | None:
        """This model's backend override (``None`` = runtime resolution)."""
        return self._backend

    def build(self, input_shape: tuple[int, ...], seed: SeedLike = None) -> None:
        """Allocate all layer variables for per-sample ``input_shape``."""
        if self.built:
            raise RuntimeError("model is already built")
        if not self.layers:
            raise RuntimeError("cannot build an empty model")
        rng = as_generator(seed)
        self._dtype = policy.resolve_dtype(self._dtype_request)
        shape = tuple(int(dim) for dim in input_shape)
        for layer in self.layers:
            if layer.dtype is None:
                layer.dtype = self._dtype
            layer.build(shape, rng)
            shape = tuple(layer.compute_output_shape(shape))
        self._input_shape = tuple(int(dim) for dim in input_shape)
        self.built = True

    def compile(self, optimizer="adam", loss="mse") -> None:
        """Attach an optimizer and a loss (names or instances)."""
        self.optimizer = optimizers_module.get(optimizer)
        self.loss = losses_module.get(loss)

    @property
    def input_shape(self) -> tuple[int, ...] | None:
        return self._input_shape

    @property
    def dtype(self) -> np.dtype | None:
        """Compute dtype (``None`` until the model is built)."""
        return self._dtype

    @property
    def output_shape(self) -> tuple[int, ...]:
        if not self.built:
            raise RuntimeError("model must be built to know its output shape")
        shape = self._input_shape
        for layer in self.layers:
            shape = tuple(layer.compute_output_shape(shape))
        return shape

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def _cast(self, array: np.ndarray) -> np.ndarray:
        """View ``array`` in the model dtype (no copy when it matches)."""
        return np.asarray(array, dtype=self._dtype)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run a full forward pass (builds lazily from the batch shape)."""
        inputs = np.asarray(inputs)
        if not self.built:
            self.build(inputs.shape[1:])
        outputs = self._cast(inputs)
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop an output gradient through every layer (reverse order)."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def infer(self, inputs: np.ndarray, backend: object | None = None) -> np.ndarray:
        """Forward pass down the layers' inference fast paths.

        Same function as ``forward(training=False)`` (the LSTM path is
        bit-identical) but no training caches are populated, so the
        recurrent working set stays O(batch) — ``backward`` must not be
        called after ``infer``.

        Backend dispatch is resolved ONCE here (model override > process
        default > ``REPRO_BACKEND`` > numpy) and the handle is threaded
        to every layer; chunked callers like :meth:`predict` pass their
        own pre-resolved handle so resolution never re-runs per chunk.
        """
        inputs = np.asarray(inputs)
        if not self.built:
            self.build(inputs.shape[1:])
        bk = backend if backend is not None else backends.resolve_backend(self._backend)
        outputs = self._cast(inputs)
        for layer in self.layers:
            outputs = layer.infer(outputs, backend=bk)
        return outputs

    def predict(self, inputs: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference in batches; deterministic (dropout disabled).

        Per-chunk work is pure compute: the input is cast to the model
        dtype ONCE up front (chunks are then zero-copy views), the
        compute backend is resolved once, and every chunk is written
        straight into one preallocated output array.  Nothing —
        dtype policy, backend lookup, output allocation — re-resolves
        inside the chunk loop.
        """
        inputs = np.asarray(inputs)
        if len(inputs) == 0:
            raise ValueError("predict called with an empty batch")
        if not self.built:
            self.build(inputs.shape[1:])
        inputs = self._cast(inputs)
        bk = backends.resolve_backend(self._backend)
        n_samples = len(inputs)
        first = self.infer(inputs[:batch_size], backend=bk)
        if len(first) == n_samples:
            # A pass-through final layer can hand the caller's own array
            # back; predict must never alias its input.
            if np.may_share_memory(first, inputs):
                return first.copy()
            return first
        outputs = np.empty((n_samples,) + first.shape[1:], dtype=first.dtype)
        outputs[: len(first)] = first
        for start in range(batch_size, n_samples, batch_size):
            chunk = self.infer(inputs[start : start + batch_size], backend=bk)
            outputs[start : start + len(chunk)] = chunk
        return outputs

    def evaluate(self, inputs: np.ndarray, targets: np.ndarray, batch_size: int = 256) -> float:
        """Mean loss over a dataset (no gradient updates)."""
        if self.loss is None:
            raise RuntimeError("model must be compiled before evaluate()")
        predictions = self.predict(inputs, batch_size=batch_size)
        return float(self.loss(targets, predictions))

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        epochs: int = 1,
        batch_size: int = 32,
        shuffle: bool = True,
        validation_data: tuple[np.ndarray, np.ndarray] | None = None,
        callbacks: list[Callback] | None = None,
        seed: SeedLike = None,
        verbose: bool = False,
    ) -> History:
        """Mini-batch training loop; returns the :class:`History` callback.

        ``seed`` drives batch shuffling (and lazy build when the model was
        not built explicitly).  Training stops early when any callback
        sets ``model.stop_training`` (e.g. :class:`EarlyStopping`).
        """
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("model must be compiled before fit()")
        inputs = np.asarray(inputs)
        targets = np.asarray(targets)
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs and targets disagree on sample count: "
                f"{len(inputs)} vs {len(targets)}"
            )
        if len(inputs) == 0:
            raise ValueError("fit called with an empty dataset")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")

        rng = as_generator(seed)
        if not self.built:
            self.build(inputs.shape[1:], seed=rng)
        # Cast the dataset once; per-batch gathers below stay in-dtype.
        inputs = self._cast(inputs)
        targets = self._cast(targets)

        history = History()
        all_callbacks: list[Callback] = [history] + list(callbacks or [])
        for callback in all_callbacks:
            callback.model = self
        self.stop_training = False

        for callback in all_callbacks:
            callback.on_train_begin({})

        sample_count = len(inputs)
        effective_batch = min(batch_size, sample_count)
        if shuffle:
            # Reusable mini-batch gather buffers (np.take writes into a
            # leading slice for the final partial batch).
            x_buffer = np.empty((effective_batch,) + inputs.shape[1:], dtype=self._dtype)
            y_buffer = np.empty((effective_batch,) + targets.shape[1:], dtype=self._dtype)
        epoch_span = obs.registry().span("repro_nn_fit_epoch")
        for epoch in range(epochs):
            with epoch_span:
                for callback in all_callbacks:
                    callback.on_epoch_begin(epoch, {})
                epoch_loss = 0.0
                if shuffle:
                    order = rng.permutation(sample_count)
                for start in range(0, sample_count, batch_size):
                    stop = min(start + batch_size, sample_count)
                    length = stop - start
                    if shuffle:
                        batch_idx = order[start:stop]
                        x_batch = np.take(inputs, batch_idx, axis=0, out=x_buffer[:length])
                        y_batch = np.take(targets, batch_idx, axis=0, out=y_buffer[:length])
                    else:
                        x_batch = inputs[start:stop]
                        y_batch = targets[start:stop]
                    batch_loss = self._train_step(x_batch, y_batch)
                    epoch_loss += batch_loss * length
                logs = {"loss": epoch_loss / sample_count}
                if validation_data is not None:
                    logs["val_loss"] = self.evaluate(*validation_data)
                if verbose:
                    rendered = ", ".join(f"{k}={v:.6f}" for k, v in logs.items())
                    print(f"epoch {epoch + 1}/{epochs}: {rendered}")
                for callback in all_callbacks:
                    callback.on_epoch_end(epoch, logs)
            if self.stop_training:
                break

        for callback in all_callbacks:
            callback.on_train_end({})
        return history

    def train_on_batch(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One forward/backward/update step; returns the batch loss."""
        if self.optimizer is None or self.loss is None:
            raise RuntimeError("model must be compiled before training")
        if not self.built:
            self.build(np.asarray(inputs).shape[1:])
        return self._train_step(self._cast(inputs), self._cast(targets))

    def _train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """Forward/backward/update on already-cast arrays."""
        predictions = self.forward(inputs, training=True)
        loss_value = self.loss(targets, predictions)
        self.zero_grads()
        grad = self.loss.gradient(targets, predictions)
        self.backward(grad)
        self.optimizer.step(self.trainable_variables)
        return float(loss_value)

    # ------------------------------------------------------------------
    # variables and weights
    # ------------------------------------------------------------------
    @property
    def trainable_variables(self) -> list[Variable]:
        variables: list[Variable] = []
        for layer in self.layers:
            variables.extend(layer.variables)
        return variables

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def get_weights(self) -> list[np.ndarray]:
        """Copies of every trainable tensor, in layer order."""
        return [variable.value.copy() for variable in self.trainable_variables]

    def set_weights(self, weights: list[np.ndarray]) -> None:
        """Assign weights (shapes must match; order as :meth:`get_weights`)."""
        variables = self.trainable_variables
        if len(weights) != len(variables):
            raise ValueError(
                f"expected {len(variables)} weight arrays, got {len(weights)}"
            )
        for variable, weight in zip(variables, weights, strict=True):
            variable.assign(weight)

    def count_params(self) -> int:
        return sum(layer.count_params() for layer in self.layers)

    def summary(self) -> str:
        """Human-readable architecture table (also returned as a string)."""
        lines = [f"Model: {self.name}", "-" * 60]
        shape = self._input_shape
        for layer in self.layers:
            if self.built and shape is not None:
                shape = tuple(layer.compute_output_shape(shape))
                shape_repr = str((None,) + shape)
            else:
                shape_repr = "(unbuilt)"
            lines.append(
                f"{layer.name:<28} {shape_repr:<20} params={layer.count_params()}"
            )
        lines.append("-" * 60)
        lines.append(f"Total params: {self.count_params()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Sequential(name={self.name!r}, layers={len(self.layers)}, built={self.built})"
