"""Pluggable compute backends for the forward/inference hot paths.

The streaming pipeline is forward-pass-bound: at fleet scale ~97% of
tick time is the autoencoder forward, sitting at the pure-NumPy
elementwise floor (one ufunc dispatch per gate op).  This module puts
the three fused kernels that dominate that cost behind a small registry
so a compiled implementation can replace them without touching layer
code:

* ``lstm_step`` — one LSTM timestep: packed-gate recurrent matmul,
  fused sigmoid/tanh gate activations, and the cell/hidden state update.
* ``dense_forward`` — dense projection with the bias add and activation
  fused into the output buffer.
* ``window_errors`` / ``pointwise_errors`` — reconstruction-error
  reductions over window batches.

Two implementations ship:

* ``"numpy"`` — the reference backend.  Bit-identical to the historical
  inline path (same ops, same order, same buffers); always available and
  the fallback whenever an accelerator is absent.
* ``"numba"`` — optional.  JIT-compiled kernels (``@njit(cache=True,
  fastmath=False)``) fuse the per-timestep elementwise chain that numpy
  ufuncs cannot, parallelised over the batch dimension for block-mode
  inference.  Requires the ``numba`` package; kernels specialise on the
  float32/float64 dtype at first call.  Results match numpy within a
  small float tolerance (float64 is typically bit-identical on a given
  libm; float32 differs in the last ulps because the scalar transcendental
  chain rounds once instead of per ufunc).

Selection order (first match wins):

1. explicit argument — ``Sequential(..., backend="numba")``,
   ``model.set_backend(...)``, or a per-layer ``layer.backend``;
2. process-wide default — :func:`set_default_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. ``"numpy"``.

A *known but unavailable* backend (e.g. ``REPRO_BACKEND=numba`` without
numba installed) warns and falls back to numpy so a numpy-only install
keeps working; an *unknown* name raises with the registered list.

Backends are runtime configuration, never model state: checkpoints and
serialized configs stay backend-agnostic.  Backends accelerate the
*forward direction* — inference AND the training-time forward pass —
while the backward/BPTT direction always runs the numpy path, consuming
the activated-gate caches the forward kernel wrote.  Gradients therefore
stay exact for whichever forward actually ran; gradient *checking*
(float64 finite differences) is still performed against the default
numpy backend, where forward numerics are the reference ones.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro import obs
from repro.nn.activations import Activation, sigmoid, sigmoid_inplace

#: Environment variable consulted when no explicit backend is requested.
ENV_VAR = "REPRO_BACKEND"


class BackendUnavailableError(ImportError):
    """A registered backend's optional dependency is not installed."""


class Backend:
    """Fused forward-kernel interface every compute backend implements.

    Kernels write into caller-provided workspace buffers so the layer
    hot loops stay allocation-free regardless of the implementation.
    """

    name = "abstract"

    def lstm_step(
        self,
        z: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
        c_out: np.ndarray,
        h_out: np.ndarray,
        tanh_c_out: np.ndarray,
        recurrent: np.ndarray,
        ws: dict[str, np.ndarray],
    ) -> None:
        """One fused LSTM timestep in the packed ``(i, f, o, g)`` layout.

        ``z`` is ``(batch, 4 * units)`` holding ``x_t @ W + b``; the step
        adds ``h_prev @ recurrent``, applies the gate activations (written
        back into ``z`` for the BPTT cache), and updates the cell/hidden
        state into ``c_out`` / ``h_out`` / ``tanh_c_out``.  ``c_out`` and
        ``h_out`` may alias ``c_prev`` / ``h_prev`` (the inference path
        updates state in place).  ``ws`` supplies the per-shape scratch
        buffers (``hz``, ``tmp_u``, ``sig_work``, ``sig_num``, ``sig_neg``).
        """
        raise NotImplementedError

    def dense_forward(
        self,
        inputs: np.ndarray,
        kernel: np.ndarray,
        bias: np.ndarray | None,
        activation: Activation,
    ) -> np.ndarray:
        """Fused ``activation(inputs @ kernel + bias)`` for inference."""
        raise NotImplementedError

    def window_errors(self, windows: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
        """Per-window reconstruction MSE, shape ``(n_windows,)``."""
        raise NotImplementedError

    def pointwise_errors(self, windows: np.ndarray, reconstructed: np.ndarray) -> np.ndarray:
        """Per-window per-step squared error (features averaged), ``(n, T)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(Backend):
    """Reference backend: the historical inline numpy path, verbatim.

    Every kernel performs the exact operations (same order, same output
    buffers) the layers ran before backends existed, so its results are
    bit-identical to the pre-registry engine.
    """

    name = "numpy"

    def lstm_step(self, z, h_prev, c_prev, c_out, h_out, tanh_c_out, recurrent, ws):
        units = h_out.shape[1]
        np.matmul(h_prev, recurrent, out=ws["hz"])
        z += ws["hz"]
        # One fused sigmoid over the contiguous (i, f, o) block, one tanh
        # over g — z now holds the activated gates.
        sigmoid_inplace(z[:, : 3 * units], ws["sig_work"], ws["sig_num"], ws["sig_neg"])
        g = z[:, 3 * units :]
        np.tanh(g, out=g)

        i = z[:, :units]
        f = z[:, units : 2 * units]
        o = z[:, 2 * units : 3 * units]
        tmp = ws["tmp_u"]
        np.multiply(f, c_prev, out=c_out)
        np.multiply(i, g, out=tmp)
        c_out += tmp
        np.tanh(c_out, out=tanh_c_out)
        np.multiply(o, tanh_c_out, out=h_out)

    def dense_forward(self, inputs, kernel, bias, activation):
        out = inputs @ kernel
        if bias is not None:
            out += bias
        name = activation.name
        if name in ("linear", "identity"):
            return out
        if name == "relu":
            np.maximum(out, 0.0, out=out)
            return out
        if name == "tanh":
            np.tanh(out, out=out)
            return out
        if name == "sigmoid":
            return sigmoid(out)
        return activation.forward(out)

    def window_errors(self, windows, reconstructed):
        return np.mean((windows - reconstructed) ** 2, axis=(1, 2))

    def pointwise_errors(self, windows, reconstructed):
        return np.mean((windows - reconstructed) ** 2, axis=2)


class NumbaBackend(NumpyBackend):
    """JIT backend: fused elementwise chains compiled with numba.

    Matmuls stay on BLAS; the elementwise chains around them (gate
    activations + state update, bias + activation, squared-error
    reductions) collapse into single compiled passes, parallelised over
    the batch dimension above :attr:`PARALLEL_MIN_ROWS` rows.  Shapes or
    activations the kernels do not cover fall back to the inherited
    numpy implementations.
    """

    name = "numba"

    #: Below this many batch rows the serial kernels win: the parallel
    #: region's fork/join overhead is comparable to the whole step.
    PARALLEL_MIN_ROWS = 128

    #: Activation codes understood by the fused dense kernels.
    _ACT_CODES = {"linear": 0, "identity": 0, "relu": 1, "sigmoid": 2, "tanh": 3}

    def __init__(self, kernels) -> None:
        self._kernels = kernels

    def lstm_step(self, z, h_prev, c_prev, c_out, h_out, tanh_c_out, recurrent, ws):
        hz = ws["hz"]
        np.matmul(h_prev, recurrent, out=hz)
        if z.shape[0] >= self.PARALLEL_MIN_ROWS:
            self._kernels.lstm_gates_parallel(z, hz, c_prev, c_out, h_out, tanh_c_out)
        else:
            self._kernels.lstm_gates_serial(z, hz, c_prev, c_out, h_out, tanh_c_out)

    def dense_forward(self, inputs, kernel, bias, activation):
        code = self._ACT_CODES.get(activation.name)
        if code is None:
            return super().dense_forward(inputs, kernel, bias, activation)
        out = inputs @ kernel
        flat = out.reshape(-1, out.shape[-1])
        parallel = flat.shape[0] >= self.PARALLEL_MIN_ROWS
        if bias is not None:
            if parallel:
                self._kernels.bias_act_parallel(flat, bias, code)
            else:
                self._kernels.bias_act_serial(flat, bias, code)
        elif code != 0:
            if parallel:
                self._kernels.act_parallel(flat, code)
            else:
                self._kernels.act_serial(flat, code)
        return out

    _FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

    def _mse_operands(self, windows, reconstructed):
        """Prepare operands for the fused reductions, or ``None`` to fall back.

        The streaming hot path scores float64 buffer windows against
        float32 reconstructions; the fused kernels need matching dtypes,
        so float windows are aligned to the reconstruction (= model
        compute) dtype — a numba-only rounding difference covered by the
        documented backend tolerance.  Non-float inputs or mismatched
        shapes fall back to the inherited numpy expression.
        """
        windows = np.asarray(windows)
        reconstructed = np.asarray(reconstructed)
        if (
            windows.ndim != 3
            or windows.shape != reconstructed.shape
            or windows.dtype not in self._FLOAT_DTYPES
            or reconstructed.dtype not in self._FLOAT_DTYPES
        ):
            return None
        windows = np.ascontiguousarray(windows, dtype=reconstructed.dtype)
        reconstructed = np.ascontiguousarray(reconstructed)
        return windows, reconstructed

    def window_errors(self, windows, reconstructed):
        operands = self._mse_operands(windows, reconstructed)
        if operands is None:
            return super().window_errors(windows, reconstructed)
        windows, reconstructed = operands
        out = np.empty(windows.shape[0], dtype=windows.dtype)
        if windows.shape[0] >= self.PARALLEL_MIN_ROWS:
            self._kernels.window_mse_parallel(windows, reconstructed, out)
        else:
            self._kernels.window_mse_serial(windows, reconstructed, out)
        return out

    def pointwise_errors(self, windows, reconstructed):
        operands = self._mse_operands(windows, reconstructed)
        if operands is None:
            return super().pointwise_errors(windows, reconstructed)
        windows, reconstructed = operands
        out = np.empty(windows.shape[:2], dtype=windows.dtype)
        if windows.shape[0] >= self.PARALLEL_MIN_ROWS:
            self._kernels.pointwise_mse_parallel(windows, reconstructed, out)
        else:
            self._kernels.pointwise_mse_serial(windows, reconstructed, out)
        return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_FACTORIES: dict[str, object] = {}
_INSTANCES: dict[str, Backend] = {}
#: Names whose factory already raised BackendUnavailableError, mapped to
#: the error message.  Availability cannot change inside one process
#: (installing a package does not retroactively appear), so a failed
#: optional import is remembered instead of re-attempted — the
#: warn-and-fall-back path must stay cheap enough for per-call hot-loop
#: resolution.
_UNAVAILABLE: dict[str, str] = {}
_DEFAULT: str | None = None


def register_backend(name: str, factory) -> None:
    """Register ``factory`` (a zero-arg callable returning a Backend).

    The factory runs lazily on first :func:`get_backend` and may raise
    :class:`BackendUnavailableError` when an optional dependency is
    missing; the name still shows up in :func:`list_backends` so error
    messages can advertise it.
    """
    _FACTORIES[str(name)] = factory
    _INSTANCES.pop(str(name), None)
    _UNAVAILABLE.pop(str(name), None)


def list_backends() -> list[str]:
    """All registered backend names (available or not)."""
    return sorted(_FACTORIES)


def available_backends() -> list[str]:
    """Registered backends whose dependencies import on this machine."""
    names = []
    for name in list_backends():
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names


def get_backend(name: str | Backend) -> Backend:
    """Resolve a backend by exact name (strict: no fallback).

    Raises ``ValueError`` for an unknown name (listing the registered
    ones) and :class:`BackendUnavailableError` when the backend is
    registered but its optional dependency is missing.
    """
    if isinstance(name, Backend):
        return name
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(list_backends())
        raise ValueError(f"unknown backend {name!r}; available: {known}") from None
    if name in _UNAVAILABLE:
        raise BackendUnavailableError(_UNAVAILABLE[name])
    instance = _INSTANCES.get(name)
    if instance is None:
        try:
            instance = factory()
        except BackendUnavailableError as error:
            _UNAVAILABLE[name] = str(error)
            raise
        _INSTANCES[name] = instance
    return instance


def set_default_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates eagerly: an unknown name raises ``ValueError``, a known
    but unavailable one raises :class:`BackendUnavailableError` — an
    explicit programmatic opt-in should fail loudly, unlike the ambient
    ``REPRO_BACKEND`` environment override which falls back with a
    warning.
    """
    global _DEFAULT
    if name is None:
        _DEFAULT = None
        return
    get_backend(name)
    _DEFAULT = str(name)


def get_default_backend() -> str | None:
    """The process-wide default backend name (``None`` = env/numpy)."""
    return _DEFAULT


def resolve_backend(request: str | Backend | None = None) -> Backend:
    """Resolve the backend to run with (argument > default > env > numpy).

    An explicit ``request`` that names a known-but-unavailable backend
    warns and falls back to numpy (models constructed with
    ``backend="numba"`` must still run on numpy-only installs); an
    unknown explicit name raises.  The same policy applies to the
    ``REPRO_BACKEND`` environment variable, except an unknown env name
    also warns-and-falls-back rather than raising, so one typo'd shell
    export cannot brick every forward pass.
    """
    backend = _resolve(request)
    reg = obs.registry()
    if reg.enabled:
        reg.counter(
            "repro_nn_backend_dispatch_total",
            help="Kernel-dispatch resolutions per compute backend.",
            labels={"backend": backend.name},
        ).inc()
    return backend


def _resolve(request: str | Backend | None) -> Backend:
    if isinstance(request, Backend):
        return request
    if request is not None:
        return _forgiving(str(request), source="backend argument", strict_unknown=True)
    if _DEFAULT is not None:
        return _forgiving(_DEFAULT, source="default backend", strict_unknown=True)
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        return _forgiving(env, source=f"{ENV_VAR} environment variable", strict_unknown=False)
    return get_backend("numpy")


def _forgiving(name: str, source: str, strict_unknown: bool) -> Backend:
    try:
        return get_backend(name)
    except BackendUnavailableError as error:
        warnings.warn(
            f"{source} requested backend {name!r} but it is unavailable "
            f"({error}); falling back to 'numpy'",
            RuntimeWarning,
            stacklevel=3,
        )
        return get_backend("numpy")
    except ValueError:
        if strict_unknown:
            raise
        known = ", ".join(list_backends())
        warnings.warn(
            f"{source} names unknown backend {name!r} (available: {known}); "
            f"falling back to 'numpy'",
            RuntimeWarning,
            stacklevel=3,
        )
        return get_backend("numpy")


def _numpy_factory() -> Backend:
    return NumpyBackend()


def _numba_factory() -> Backend:
    try:
        from repro.nn import _numba_kernels
    except ImportError as error:
        raise BackendUnavailableError(
            "backend 'numba' requires the optional numba package (pip install numba)"
        ) from error
    return NumbaBackend(_numba_kernels)


register_backend("numpy", _numpy_factory)
register_backend("numba", _numba_factory)
