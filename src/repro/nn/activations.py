"""Activation functions with analytic derivatives.

Each activation is a small class exposing ``forward`` and ``backward``;
``backward`` consumes the *forward output* (not the input) wherever the
derivative is cheaper in terms of the output (sigmoid, tanh), which is
what the LSTM backward pass exploits.
"""

from __future__ import annotations

import numpy as np


class Activation:
    """Base class; subclasses implement ``forward`` and ``derivative``."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """d(activation)/dx given input ``x`` and forward output ``y``."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Chain an upstream gradient through the activation."""
        return grad * self.derivative(x, y)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Linear(Activation):
    """Identity activation (Keras ``linear``)."""

    name = "linear"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        del y
        return np.ones_like(x)


class ReLU(Activation):
    """Rectified linear unit, max(0, x)."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        del y
        return (x > 0).astype(x.dtype)


class LeakyReLU(Activation):
    """Leaky ReLU with configurable negative slope."""

    name = "leaky_relu"

    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = float(alpha)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, self.alpha * x)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        del y
        return np.where(x > 0, 1.0, self.alpha)


class Sigmoid(Activation):
    """Logistic sigmoid, numerically stabilised for large |x|."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return sigmoid(x)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        del x
        return y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        del x
        return 1.0 - y * y


class Softplus(Activation):
    """Softplus, log(1 + e^x), a smooth ReLU."""

    name = "softplus"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # log1p(exp(-|x|)) + max(x, 0) is stable for both signs.
        return np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0.0)

    def derivative(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        del y
        return sigmoid(x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid used throughout the LSTM.

    The output dtype matches the input's floating precision (float64 for
    non-float input, preserving the historical behaviour).
    """
    x = np.asarray(x)
    dtype = x.dtype if x.dtype in (np.float32, np.float64) else np.float64
    out = np.empty_like(x, dtype=dtype)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def sigmoid_inplace(x: np.ndarray, work: np.ndarray, numerator: np.ndarray,
                    negative: np.ndarray) -> None:
    """Overwrite ``x`` with ``sigmoid(x)`` using caller-provided scratch.

    Computes the exact same stabilised expression as :func:`sigmoid` —
    ``1 / (1 + e^-x)`` for ``x >= 0`` and ``e^x / (1 + e^x)`` otherwise —
    but with preallocated buffers so the LSTM's fused gate update is
    allocation-free.  ``work``/``numerator`` must be float buffers of
    ``x``'s shape and dtype; ``negative`` a bool buffer of the same shape.
    """
    np.less(x, 0.0, out=negative)
    np.abs(x, out=work)
    np.negative(work, out=work)
    np.exp(work, out=work)              # e^{-|x|}, in (0, 1]
    numerator.fill(1.0)
    np.copyto(numerator, work, where=negative)
    np.add(work, 1.0, out=x)            # denominator 1 + e^{-|x|}
    np.divide(numerator, x, out=x)


_REGISTRY: dict[str, type[Activation]] = {
    "linear": Linear,
    "identity": Linear,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softplus": Softplus,
}


def get(name_or_activation: str | Activation | None) -> Activation:
    """Resolve an activation by name; ``None`` means linear."""
    if name_or_activation is None:
        return Linear()
    if isinstance(name_or_activation, Activation):
        return name_or_activation
    try:
        return _REGISTRY[name_or_activation]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown activation {name_or_activation!r}; known: {known}"
        ) from None
