"""JIT-compiled fused kernels for the ``"numba"`` compute backend.

Importing this module requires the optional ``numba`` package; the
backend registry's numba factory is the only importer, so a numpy-only
install never touches it.

Design notes:

* Matmuls are NOT jitted — BLAS through numpy already saturates them.
  These kernels fuse the elementwise chains *around* the matmuls, which
  is exactly the part a sequence of numpy ufuncs cannot fuse: one memory
  pass instead of ~10 dispatch+write cycles per LSTM step.
* Every kernel comes in a serial and a ``prange``-parallel variant; the
  backend picks by batch size (fork/join overhead swamps small batches).
* ``cache=True`` persists compiled machine code on disk, so only the
  first-ever process pays the JIT cost for a given dtype signature.
* ``fastmath=False`` everywhere: kernels must track the numpy reference
  semantics (NaN propagation, no reassociation), with float differences
  bounded by rounding, not by value-unsafe transforms.
* The scalar sigmoid mirrors the stabilised branchy form of
  :func:`repro.nn.activations.sigmoid` so large |x| cannot overflow.
* Kernels compile lazily per dtype: the float32 and float64 policies
  each get their own specialisation at first call.
"""

from __future__ import annotations

import math

import numpy as np
from numba import njit, prange

__all__ = [
    "lstm_gates_serial",
    "lstm_gates_parallel",
    "bias_act_serial",
    "bias_act_parallel",
    "act_serial",
    "act_parallel",
    "window_mse_serial",
    "window_mse_parallel",
    "pointwise_mse_serial",
    "pointwise_mse_parallel",
]


@njit(cache=True, fastmath=False, inline="always")
def _sigmoid(x):
    # Stabilised logistic: 1/(1+e^-x) for x >= 0, e^x/(1+e^x) otherwise.
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


@njit(cache=True, fastmath=False, inline="always")
def _lstm_gates_row(z, hz, c_prev, c_out, h_out, tanh_c_out, b, units):
    # Packed gate order (i, f, o, g): three sigmoid gates, then tanh.
    for j in range(units):
        gi = _sigmoid(z[b, j] + hz[b, j])
        gf = _sigmoid(z[b, units + j] + hz[b, units + j])
        go = _sigmoid(z[b, 2 * units + j] + hz[b, 2 * units + j])
        gg = math.tanh(z[b, 3 * units + j] + hz[b, 3 * units + j])
        cc = gf * c_prev[b, j] + gi * gg
        tc = math.tanh(cc)
        # Activated gates overwrite the pre-activations: the numpy BPTT
        # backward consumes them from the training cache unchanged.
        z[b, j] = gi
        z[b, units + j] = gf
        z[b, 2 * units + j] = go
        z[b, 3 * units + j] = gg
        c_out[b, j] = cc
        tanh_c_out[b, j] = tc
        h_out[b, j] = go * tc


@njit(cache=True, fastmath=False)
def lstm_gates_serial(z, hz, c_prev, c_out, h_out, tanh_c_out):
    batch = z.shape[0]
    units = z.shape[1] // 4
    for b in range(batch):
        _lstm_gates_row(z, hz, c_prev, c_out, h_out, tanh_c_out, b, units)


@njit(cache=True, fastmath=False, parallel=True)
def lstm_gates_parallel(z, hz, c_prev, c_out, h_out, tanh_c_out):
    batch = z.shape[0]
    units = z.shape[1] // 4
    for b in prange(batch):
        _lstm_gates_row(z, hz, c_prev, c_out, h_out, tanh_c_out, b, units)


@njit(cache=True, fastmath=False, inline="always")
def _apply_act(x, code):
    # Codes: 0 linear, 1 relu, 2 sigmoid, 3 tanh (see NumbaBackend).
    if code == 1:
        return max(x, 0.0)
    if code == 2:
        return _sigmoid(x)
    if code == 3:
        return math.tanh(x)
    return x


@njit(cache=True, fastmath=False)
def bias_act_serial(out, bias, code):
    rows, cols = out.shape
    for r in range(rows):
        for c in range(cols):
            out[r, c] = _apply_act(out[r, c] + bias[c], code)


@njit(cache=True, fastmath=False, parallel=True)
def bias_act_parallel(out, bias, code):
    rows, cols = out.shape
    for r in prange(rows):
        for c in range(cols):
            out[r, c] = _apply_act(out[r, c] + bias[c], code)


@njit(cache=True, fastmath=False)
def act_serial(out, code):
    rows, cols = out.shape
    for r in range(rows):
        for c in range(cols):
            out[r, c] = _apply_act(out[r, c], code)


@njit(cache=True, fastmath=False, parallel=True)
def act_parallel(out, code):
    rows, cols = out.shape
    for r in prange(rows):
        for c in range(cols):
            out[r, c] = _apply_act(out[r, c], code)


@njit(cache=True, fastmath=False, inline="always")
def _window_sse(windows, reconstructed, i):
    timesteps, features = windows.shape[1], windows.shape[2]
    acc = 0.0
    for t in range(timesteps):
        for f in range(features):
            d = np.float64(windows[i, t, f]) - np.float64(reconstructed[i, t, f])
            acc += d * d
    return acc


@njit(cache=True, fastmath=False)
def window_mse_serial(windows, reconstructed, out):
    denom = windows.shape[1] * windows.shape[2]
    for i in range(windows.shape[0]):
        out[i] = _window_sse(windows, reconstructed, i) / denom


@njit(cache=True, fastmath=False, parallel=True)
def window_mse_parallel(windows, reconstructed, out):
    denom = windows.shape[1] * windows.shape[2]
    for i in prange(windows.shape[0]):
        out[i] = _window_sse(windows, reconstructed, i) / denom


@njit(cache=True, fastmath=False, inline="always")
def _pointwise_row(windows, reconstructed, out, i):
    timesteps, features = windows.shape[1], windows.shape[2]
    for t in range(timesteps):
        acc = 0.0
        for f in range(features):
            d = np.float64(windows[i, t, f]) - np.float64(reconstructed[i, t, f])
            acc += d * d
        out[i, t] = acc / features


@njit(cache=True, fastmath=False)
def pointwise_mse_serial(windows, reconstructed, out):
    for i in range(windows.shape[0]):
        _pointwise_row(windows, reconstructed, out, i)


@njit(cache=True, fastmath=False, parallel=True)
def pointwise_mse_parallel(windows, reconstructed, out):
    for i in prange(windows.shape[0]):
        _pointwise_row(windows, reconstructed, out, i)
