"""Pure-numpy neural-network substrate.

The paper's models are Keras ``Sequential`` stacks; no deep-learning
framework is available offline, so this package reimplements the needed
subset from scratch: LSTM with hand-derived BPTT, Dense, Dropout,
RepeatVector, TimeDistributed, MSE/MAE/Huber losses, SGD/Adam/RMSProp/
Adagrad optimizers, early stopping, and weight serialization.  Gradients
are validated against finite differences in the test suite.
"""

from repro.nn import backend, policy
from repro.nn.backend import (
    available_backends,
    get_backend,
    list_backends,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.nn.callbacks import (
    Callback,
    EarlyStopping,
    History,
    LambdaCallback,
    TerminateOnNaN,
)
from repro.nn.layers import (
    LSTM,
    Activation,
    Dense,
    Dropout,
    Layer,
    RepeatVector,
    TimeDistributed,
    Variable,
)
from repro.nn.losses import Huber, Loss, MeanAbsoluteError, MeanSquaredError
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adagrad, Adam, Optimizer, RMSProp
from repro.nn.policy import dtype_policy, get_dtype_policy, resolve_dtype, set_dtype_policy
from repro.nn.serialization import (
    load_model,
    load_weights,
    model_from_config,
    model_to_config,
    save_model,
    save_weights,
)

__all__ = [
    "backend",
    "register_backend",
    "get_backend",
    "list_backends",
    "available_backends",
    "resolve_backend",
    "set_default_backend",
    "policy",
    "dtype_policy",
    "get_dtype_policy",
    "resolve_dtype",
    "set_dtype_policy",
    "Callback",
    "EarlyStopping",
    "History",
    "LambdaCallback",
    "TerminateOnNaN",
    "LSTM",
    "Activation",
    "Dense",
    "Dropout",
    "Layer",
    "RepeatVector",
    "TimeDistributed",
    "Variable",
    "Huber",
    "Loss",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "Sequential",
    "SGD",
    "Adagrad",
    "Adam",
    "Optimizer",
    "RMSProp",
    "load_model",
    "load_weights",
    "model_from_config",
    "model_to_config",
    "save_model",
    "save_weights",
]
