"""First-order optimizers.

The paper trains with Adam at learning rate 0.001 (its
``LEARNING_RATE = 0.001`` hyperparameter); SGD/RMSProp/Adagrad are
provided for substrate completeness and ablations.

Optimizers hold per-variable slot state keyed by the
:class:`~repro.nn.layers.base.Variable` object itself in a
``WeakKeyDictionary`` — identity-stable across weight loads (loading
assigns in place), yet garbage-collected with the variable, so a new
variable that happens to reuse a dead variable's ``id()`` can never
inherit stale moments.  Slot arrays (and the update scratch buffer)
match each variable's dtype, and every update runs through ``out=``
ufuncs: a training step allocates no per-step arrays.

:meth:`Optimizer.step` applies one update from the gradients currently
stored on the variables and bumps each variable's ``version`` so layers
can invalidate caches derived from the weights.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.nn.layers.base import Variable


class Optimizer:
    """Base optimizer: subclasses implement :meth:`_update_one`."""

    def __init__(self, learning_rate: float = 0.01, clipnorm: float | None = None) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if clipnorm is not None and clipnorm <= 0:
            raise ValueError(f"clipnorm must be > 0, got {clipnorm}")
        self.learning_rate = float(learning_rate)
        self.clipnorm = clipnorm
        self.iterations = 0
        self._slots: weakref.WeakKeyDictionary[Variable, dict[str, np.ndarray]] = (
            weakref.WeakKeyDictionary()
        )

    def step(self, variables: list[Variable]) -> None:
        """Apply one update from each variable's current ``grad``."""
        self.iterations += 1
        if self.clipnorm is not None:
            self._clip_global_norm(variables)
        for variable in variables:
            slots = self._slots.get(variable)
            if slots is None:
                slots = self._slots[variable] = {}
            self._update_one(variable, slots)
            variable.touch()

    def _update_one(self, variable: Variable, slots: dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    @staticmethod
    def _scratch(variable: Variable, slots: dict[str, np.ndarray]) -> np.ndarray:
        """Reusable update buffer matching the variable's shape/dtype."""
        scratch = slots.get("scratch")
        if scratch is None:
            scratch = slots["scratch"] = np.empty_like(variable.value)
        return scratch

    def _clip_global_norm(self, variables: list[Variable]) -> None:
        total = float(sum(
            np.sum(v.grad * v.grad, dtype=np.float64)  # reprolint: disable=RPR002
            for v in variables
        ))
        norm = np.sqrt(total)
        if norm > self.clipnorm:
            scale = self.clipnorm / (norm + 1e-12)
            for variable in variables:
                variable.grad *= scale

    def reset(self) -> None:
        """Drop all slot state (e.g. between federated rounds if desired)."""
        self._slots.clear()
        self.iterations = 0

    def get_config(self) -> dict:
        return {"learning_rate": self.learning_rate, "clipnorm": self.clipnorm}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(learning_rate={self.learning_rate})"


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        clipnorm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _update_one(self, variable: Variable, slots: dict[str, np.ndarray]) -> None:
        if self.momentum == 0.0:
            scratch = self._scratch(variable, slots)
            np.multiply(variable.grad, self.learning_rate, out=scratch)
            variable.value -= scratch
            return
        velocity = slots.get("velocity")
        if velocity is None:
            velocity = slots["velocity"] = np.zeros_like(variable.value)
        scratch = self._scratch(variable, slots)
        velocity *= self.momentum
        np.multiply(variable.grad, self.learning_rate, out=scratch)
        velocity -= scratch
        if self.nesterov:
            variable.value -= scratch  # -lr * grad
            np.multiply(velocity, self.momentum, out=scratch)
            variable.value += scratch
        else:
            variable.value += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction — the paper's optimizer."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-7,
        clipnorm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        if not 0.0 <= beta_1 < 1.0 or not 0.0 <= beta_2 < 1.0:
            raise ValueError("beta_1 and beta_2 must be in [0, 1)")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)

    def _update_one(self, variable: Variable, slots: dict[str, np.ndarray]) -> None:
        m = slots.get("m")
        if m is None:
            m = slots["m"] = np.zeros_like(variable.value)
            slots["v"] = np.zeros_like(variable.value)
            slots["update"] = np.empty_like(variable.value)
        v = slots["v"]
        update = slots["update"]
        scratch = self._scratch(variable, slots)
        grad = variable.grad

        m *= self.beta_1
        np.multiply(grad, 1.0 - self.beta_1, out=scratch)
        m += scratch
        v *= self.beta_2
        np.multiply(grad, grad, out=scratch)
        scratch *= 1.0 - self.beta_2
        v += scratch

        t = self.iterations
        # update = lr * m_hat / (sqrt(v_hat) + eps), all in place.
        np.multiply(v, 1.0 / (1.0 - self.beta_2**t), out=scratch)
        np.sqrt(scratch, out=scratch)
        scratch += self.epsilon
        np.multiply(m, self.learning_rate / (1.0 - self.beta_1**t), out=update)
        update /= scratch
        variable.value -= update


class RMSProp(Optimizer):
    """RMSProp with exponentially decayed squared-gradient accumulator."""

    def __init__(
        self,
        learning_rate: float = 0.001,
        rho: float = 0.9,
        epsilon: float = 1e-7,
        clipnorm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho = float(rho)
        self.epsilon = float(epsilon)

    def _update_one(self, variable: Variable, slots: dict[str, np.ndarray]) -> None:
        accum = slots.get("accum")
        if accum is None:
            accum = slots["accum"] = np.zeros_like(variable.value)
        scratch = self._scratch(variable, slots)
        accum *= self.rho
        np.multiply(variable.grad, variable.grad, out=scratch)
        scratch *= 1.0 - self.rho
        accum += scratch
        np.sqrt(accum, out=scratch)
        scratch += self.epsilon
        np.divide(variable.grad, scratch, out=scratch)
        scratch *= self.learning_rate
        variable.value -= scratch


class Adagrad(Optimizer):
    """Adagrad: per-parameter learning-rate decay by accumulated squares."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        epsilon: float = 1e-7,
        clipnorm: float | None = None,
    ) -> None:
        super().__init__(learning_rate, clipnorm)
        self.epsilon = float(epsilon)

    def _update_one(self, variable: Variable, slots: dict[str, np.ndarray]) -> None:
        accum = slots.get("accum")
        if accum is None:
            accum = slots["accum"] = np.zeros_like(variable.value)
        scratch = self._scratch(variable, slots)
        np.multiply(variable.grad, variable.grad, out=scratch)
        accum += scratch
        np.sqrt(accum, out=scratch)
        scratch += self.epsilon
        np.divide(variable.grad, scratch, out=scratch)
        scratch *= self.learning_rate
        variable.value -= scratch


_REGISTRY: dict[str, type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "rmsprop": RMSProp,
    "adagrad": Adagrad,
}


def get(name_or_optimizer: str | Optimizer) -> Optimizer:
    """Resolve an optimizer by name (with defaults), or pass through."""
    if isinstance(name_or_optimizer, Optimizer):
        return name_or_optimizer
    try:
        return _REGISTRY[name_or_optimizer]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown optimizer {name_or_optimizer!r}; known: {known}"
        ) from None
