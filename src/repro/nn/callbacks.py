"""Training callbacks.

The paper uses early stopping with patience 10 for autoencoder training;
:class:`EarlyStopping` mirrors the Keras behaviour including optional
best-weight restoration.  :class:`History` is attached automatically by
``Sequential.fit`` and is its return value.
"""

from __future__ import annotations

import math

import numpy as np


class Callback:
    """Base callback; ``model`` is attached by ``fit`` before training."""

    def __init__(self) -> None:
        self.model = None

    def on_train_begin(self, logs: dict | None = None) -> None:
        """Called once before the first epoch."""

    def on_train_end(self, logs: dict | None = None) -> None:
        """Called once after the last epoch."""

    def on_epoch_begin(self, epoch: int, logs: dict | None = None) -> None:
        """Called at the start of every epoch."""

    def on_epoch_end(self, epoch: int, logs: dict | None = None) -> None:
        """Called with the epoch's metric logs (``loss``, ``val_loss``...)."""


class History(Callback):
    """Records per-epoch metric logs into ``history[metric] -> list``."""

    def __init__(self) -> None:
        super().__init__()
        self.history: dict[str, list[float]] = {}
        self.epochs_run = 0

    def on_train_begin(self, logs: dict | None = None) -> None:
        # Intentionally do not reset: repeated fit() calls (federated
        # rounds) accumulate one continuous history.
        del logs

    def on_epoch_end(self, epoch: int, logs: dict | None = None) -> None:
        del epoch
        self.epochs_run += 1
        for key, value in (logs or {}).items():
            self.history.setdefault(key, []).append(float(value))


class EarlyStopping(Callback):
    """Stop training when a monitored metric stops improving.

    Parameters
    ----------
    monitor:
        Metric key in the epoch logs (``"loss"`` or ``"val_loss"``).
    patience:
        Number of non-improving epochs tolerated before stopping; the
        paper uses 10 for autoencoder training.
    min_delta:
        Minimum decrease counting as an improvement.
    restore_best_weights:
        If ``True`` the model weights revert to the best epoch on stop.
    """

    def __init__(
        self,
        monitor: str = "loss",
        patience: int = 10,
        min_delta: float = 0.0,
        restore_best_weights: bool = True,
    ) -> None:
        super().__init__()
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best_weights = bool(restore_best_weights)
        self.best = math.inf
        self.wait = 0
        self.stopped_epoch: int | None = None
        self._best_weights: list[np.ndarray] | None = None

    def on_train_begin(self, logs: dict | None = None) -> None:
        del logs
        self.best = math.inf
        self.wait = 0
        self.stopped_epoch = None
        self._best_weights = None

    def on_epoch_end(self, epoch: int, logs: dict | None = None) -> None:
        logs = logs or {}
        if self.monitor not in logs:
            raise KeyError(
                f"EarlyStopping monitors {self.monitor!r} but epoch logs only "
                f"contain {sorted(logs)}"
            )
        current = float(logs[self.monitor])
        if math.isnan(current):
            # NaN loss is never an improvement; treat as a non-improving epoch.
            self.wait += 1
        elif current < self.best - self.min_delta:
            self.best = current
            self.wait = 0
            if self.restore_best_weights and self.model is not None:
                self._best_weights = [w.copy() for w in self.model.get_weights()]
        else:
            self.wait += 1
        if self.wait > self.patience and self.model is not None:
            self.model.stop_training = True
            self.stopped_epoch = epoch

    def on_train_end(self, logs: dict | None = None) -> None:
        del logs
        if (
            self.restore_best_weights
            and self._best_weights is not None
            and self.model is not None
            and self.stopped_epoch is not None
        ):
            self.model.set_weights(self._best_weights)


class TerminateOnNaN(Callback):
    """Abort training as soon as the loss becomes NaN or infinite."""

    def __init__(self) -> None:
        super().__init__()
        self.terminated = False

    def on_epoch_end(self, epoch: int, logs: dict | None = None) -> None:
        del epoch
        loss = (logs or {}).get("loss")
        if loss is not None and not math.isfinite(float(loss)):
            self.terminated = True
            if self.model is not None:
                self.model.stop_training = True


class LambdaCallback(Callback):
    """Attach ad-hoc functions to training events (testing/instrumentation)."""

    def __init__(
        self,
        on_epoch_end=None,
        on_train_begin=None,
        on_train_end=None,
    ) -> None:
        super().__init__()
        self._on_epoch_end = on_epoch_end
        self._on_train_begin = on_train_begin
        self._on_train_end = on_train_end

    def on_train_begin(self, logs: dict | None = None) -> None:
        if self._on_train_begin is not None:
            self._on_train_begin(logs or {})

    def on_train_end(self, logs: dict | None = None) -> None:
        if self._on_train_end is not None:
            self._on_train_end(logs or {})

    def on_epoch_end(self, epoch: int, logs: dict | None = None) -> None:
        if self._on_epoch_end is not None:
            self._on_epoch_end(epoch, logs or {})
