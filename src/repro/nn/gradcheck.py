"""Numerical gradient verification.

The whole reproduction rests on the hand-derived BPTT in
:mod:`repro.nn.layers.lstm`; these helpers compare analytic gradients
against central finite differences so the test suite can prove the
substrate's calculus is right (see ``tests/nn/test_gradcheck.py``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import Loss
from repro.nn.model import Sequential


def relative_error(analytic: np.ndarray, numeric: np.ndarray) -> float:
    """Max elementwise relative error, guarded against division by ~0."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    scale = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
    return float(np.max(np.abs(analytic - numeric) / scale))


def check_model_gradients(
    model: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss: Loss,
    epsilon: float = 1e-6,
    max_entries_per_variable: int = 24,
    rng: np.random.Generator | None = None,
) -> float:
    """Return the worst relative error between analytic and numeric grads.

    For every trainable variable, up to ``max_entries_per_variable``
    entries are perturbed by ±epsilon (central differences).  The model
    must already be built; dropout must be inactive (we forward with
    ``training=False`` semantics by relying on deterministic layers —
    pass models without Dropout, or rate 0, for exact checks).

    Tight default tolerances assume a float64 model (build under
    ``policy.dtype_policy("float64")`` or ``Sequential(dtype="float64")``);
    float32 models need a larger ``epsilon`` and looser tolerance because
    central differences lose roughly half the mantissa.
    """
    rng = rng or np.random.default_rng(0)
    inputs = np.asarray(inputs, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)

    # Analytic gradients.
    predictions = model.forward(inputs, training=False)
    model.zero_grads()
    model.backward(loss.gradient(targets, predictions))
    analytic = {id(v): v.grad.copy() for v in model.trainable_variables}

    worst = 0.0
    for variable in model.trainable_variables:
        flat = variable.value.reshape(-1)
        size = flat.size
        if size <= max_entries_per_variable:
            entry_indices = np.arange(size)
        else:
            entry_indices = rng.choice(size, size=max_entries_per_variable, replace=False)
        analytic_flat = analytic[id(variable)].reshape(-1)
        for index in entry_indices:
            original = flat[index]
            # Perturbations go through a raw view, so caches derived from
            # the weights (packed LSTM kernels) must be told explicitly.
            flat[index] = original + epsilon
            variable.touch()
            loss_plus = loss(targets, model.forward(inputs, training=False))
            flat[index] = original - epsilon
            variable.touch()
            loss_minus = loss(targets, model.forward(inputs, training=False))
            flat[index] = original
            variable.touch()
            numeric = (loss_plus - loss_minus) / (2.0 * epsilon)
            worst = max(worst, relative_error(analytic_flat[index], numeric))
    return worst


def check_input_gradients(
    model: Sequential,
    inputs: np.ndarray,
    targets: np.ndarray,
    loss: Loss,
    epsilon: float = 1e-6,
    max_entries: int = 32,
    rng: np.random.Generator | None = None,
) -> float:
    """Verify the gradient the model returns w.r.t. its *inputs*."""
    rng = rng or np.random.default_rng(0)
    inputs = np.asarray(inputs, dtype=np.float64).copy()
    targets = np.asarray(targets, dtype=np.float64)

    predictions = model.forward(inputs, training=False)
    model.zero_grads()
    grad_inputs = model.backward(loss.gradient(targets, predictions))

    flat = inputs.reshape(-1)
    grad_flat = np.asarray(grad_inputs).reshape(-1)
    size = flat.size
    if size <= max_entries:
        entry_indices = np.arange(size)
    else:
        entry_indices = rng.choice(size, size=max_entries, replace=False)

    worst = 0.0
    for index in entry_indices:
        original = flat[index]
        flat[index] = original + epsilon
        loss_plus = loss(targets, model.forward(inputs, training=False))
        flat[index] = original - epsilon
        loss_minus = loss(targets, model.forward(inputs, training=False))
        flat[index] = original
        numeric = (loss_plus - loss_minus) / (2.0 * epsilon)
        worst = max(worst, relative_error(grad_flat[index], numeric))
    return worst
