"""Model configuration and weight (de)serialization.

Architectures round-trip through plain dicts (JSON-safe) and weights
through ``.npz`` archives, which is all the federated runtime needs to
checkpoint global models between rounds.

Checkpoints are backend-agnostic by design: the compute backend
(:mod:`repro.nn.backend`) is runtime configuration — like the number of
BLAS threads, not like the dtype — so it is deliberately NOT part of
:func:`model_to_config` and a model saved under ``"numba"`` reloads and
runs on a numpy-only install.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.nn.layers import (
    LSTM,
    Activation,
    Dense,
    Dropout,
    Layer,
    RepeatVector,
    TimeDistributed,
)
from repro.nn.model import Sequential

_LAYER_CLASSES: dict[str, type[Layer]] = {
    "Dense": Dense,
    "LSTM": LSTM,
    "Dropout": Dropout,
    "RepeatVector": RepeatVector,
    "TimeDistributed": TimeDistributed,
    "Activation": Activation,
}


def model_to_config(model: Sequential) -> dict:
    """Serialise a model's architecture (not weights) to a plain dict."""
    return {
        "name": model.name,
        "input_shape": list(model.input_shape) if model.input_shape else None,
        "dtype": model.dtype.name if model.dtype is not None else None,
        "layers": [
            {"class": type(layer).__name__, "config": layer.get_config()}
            for layer in model.layers
        ],
    }


def model_from_config(config: dict) -> Sequential:
    """Rebuild an (unbuilt, uncompiled) model from :func:`model_to_config`.

    A model checkpointed under one dtype policy reloads with the same
    compute dtype regardless of the active policy (older configs without
    a ``dtype`` entry fall back to the policy).
    """
    layers = [_layer_from_entry(entry) for entry in config["layers"]]
    model = Sequential(layers, name=config.get("name", "sequential"), dtype=config.get("dtype"))
    input_shape = config.get("input_shape")
    if input_shape:
        model.build(tuple(input_shape), seed=0)
    return model


def _layer_from_entry(entry: dict) -> Layer:
    class_name = entry["class"]
    if class_name not in _LAYER_CLASSES:
        known = ", ".join(sorted(_LAYER_CLASSES))
        raise ValueError(f"unknown layer class {class_name!r}; known: {known}")
    config = dict(entry["config"])
    if class_name == "TimeDistributed":
        inner_config = config.pop("inner")
        inner_class = config.pop("inner_class")
        inner = _layer_from_entry({"class": inner_class, "config": inner_config})
        return TimeDistributed(inner, name=config.get("name"))
    return _LAYER_CLASSES[class_name](**config)


def save_model(model: Sequential, path: str | Path) -> None:
    """Save architecture + weights: ``<path>.json`` and ``<path>.npz``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path.with_suffix(".json"), "w", encoding="utf-8") as handle:
        json.dump(model_to_config(model), handle, indent=2)
    save_weights(model, path.with_suffix(".npz"))


def load_model(path: str | Path) -> Sequential:
    """Load a model saved by :func:`save_model` (architecture + weights)."""
    path = Path(path)
    with open(path.with_suffix(".json"), encoding="utf-8") as handle:
        config = json.load(handle)
    model = model_from_config(config)
    if not model.built:
        raise ValueError(
            "saved config has no input_shape; build the model before saving"
        )
    load_weights(model, path.with_suffix(".npz"))
    return model


def save_weights(model: Sequential, path: str | Path) -> None:
    """Save weights only, as an ``.npz`` archive keyed ``w0, w1, ...``."""
    weights = model.get_weights()
    np.savez(Path(path), **{f"w{i}": w for i, w in enumerate(weights)})


def load_weights(model: Sequential, path: str | Path) -> None:
    """Load an ``.npz`` archive produced by :func:`save_weights`."""
    with np.load(Path(path)) as archive:
        weights = [archive[f"w{i}"] for i in range(len(archive.files))]
    model.set_weights(weights)
