"""Global and per-model floating-point precision policy.

The substrate computes in ``float32`` by default: every workload in the
reproduction (forecaster training, autoencoder scoring, streaming ticks)
is BLAS-bound, and single precision roughly halves memory traffic while
doubling SIMD width.  ``float64`` remains available — and is required —
for finite-difference gradient checking and any parity test whose
tolerances are tighter than single precision can express.

Usage::

    from repro.nn import policy

    policy.set_dtype_policy("float64")          # process-wide opt-in
    with policy.dtype_policy("float64"):        # scoped opt-in
        model.build(...)
    model = Sequential(layers, dtype="float64") # per-model override

The policy is read when a model/layer is *built*; already-built models
keep the dtype they were built with.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

#: Precisions the substrate supports.  Half precision is excluded: numpy
#: ufuncs upcast float16 internally, which is slower than float32.
ALLOWED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

#: Default compute precision (see module docstring).
DEFAULT_DTYPE = np.dtype(np.float32)

_current_dtype: np.dtype = DEFAULT_DTYPE


def _validate(dtype: object) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in ALLOWED_DTYPES:
        allowed = ", ".join(d.name for d in ALLOWED_DTYPES)
        raise ValueError(f"unsupported dtype policy {resolved.name!r}; allowed: {allowed}")
    return resolved


def set_dtype_policy(dtype: object) -> None:
    """Set the process-wide compute dtype (``'float32'`` or ``'float64'``)."""
    global _current_dtype
    _current_dtype = _validate(dtype)


def get_dtype_policy() -> np.dtype:
    """The current process-wide compute dtype."""
    return _current_dtype


def resolve_dtype(dtype: object | None = None) -> np.dtype:
    """Resolve an explicit dtype request, falling back to the policy."""
    if dtype is None:
        return _current_dtype
    return _validate(dtype)


@contextmanager
def dtype_policy(dtype: object) -> Iterator[np.dtype]:
    """Temporarily switch the process-wide dtype policy."""
    global _current_dtype
    previous = _current_dtype
    _current_dtype = _validate(dtype)
    try:
        yield _current_dtype
    finally:
        _current_dtype = previous
