"""Layer zoo for the numpy neural-network substrate."""

from repro.nn.layers.activation import Activation
from repro.nn.layers.base import Layer, Variable
from repro.nn.layers.dense import Dense
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.repeat_vector import RepeatVector
from repro.nn.layers.time_distributed import TimeDistributed

__all__ = [
    "Activation",
    "Layer",
    "Variable",
    "Dense",
    "Dropout",
    "LSTM",
    "RepeatVector",
    "TimeDistributed",
]
