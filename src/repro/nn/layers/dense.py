"""Fully connected layer.

Matches Keras semantics: the kernel acts on the last axis, so a ``Dense``
layer applied to ``(batch, timesteps, features)`` input transforms every
timestep independently — which is how the LSTM autoencoder's output
projection behaves when wrapped in ``TimeDistributed``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import activations, initializers
from repro.nn import backend as backends
from repro.nn.layers.base import Layer


class Dense(Layer):
    """``y = activation(x @ W + b)`` applied along the last axis.

    Parameters
    ----------
    units:
        Output feature count.
    activation:
        Name or :class:`~repro.nn.activations.Activation`; default linear.
    use_bias:
        Whether to add a bias vector.
    kernel_initializer / bias_initializer:
        Initialiser names or callables (defaults match Keras).
    """

    def __init__(
        self,
        units: int,
        activation: str | None = None,
        use_bias: bool = True,
        kernel_initializer: str = "glorot_uniform",
        bias_initializer: str = "zeros",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        self.units = int(units)
        self.activation = activations.get(activation)
        self.use_bias = bool(use_bias)
        self.kernel_initializer = kernel_initializer
        self.bias_initializer = bias_initializer
        self._kernel = None
        self._bias = None
        self._cache: dict[str, np.ndarray] = {}

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) < 1:
            raise ValueError(f"Dense needs at least 1-D input, got {input_shape}")
        in_features = int(input_shape[-1])
        self._kernel = self.add_variable(
            "kernel", (in_features, self.units), initializers.get(self.kernel_initializer), rng
        )
        if self.use_bias:
            self._bias = self.add_variable(
                "bias", (self.units,), initializers.get(self.bias_initializer), rng
            )
        super().build(input_shape, rng)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        return tuple(input_shape[:-1]) + (self.units,)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        inputs = self._cast(inputs)
        pre = inputs @ self._kernel.value
        if self.use_bias:
            pre += self._bias.value
        outputs = self.activation.forward(pre)
        self._cache = {"inputs": inputs, "pre": pre, "outputs": outputs}
        return outputs

    def infer(self, inputs: np.ndarray, backend: object | None = None) -> np.ndarray:
        """Fused inference: ``activation(x @ W + b)`` via the compute backend.

        Values are identical to :meth:`forward` (the numpy backend runs
        the same expression, applied in place); no training cache is
        populated, so ``backward`` must not follow.
        """
        inputs = self._cast(inputs)
        bk = backend if backend is not None else backends.resolve_backend(self.backend)
        bias = self._bias.value if self.use_bias else None
        return bk.dense_forward(inputs, self._kernel.value, bias, self.activation)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called before forward")
        inputs = self._cache["inputs"]
        pre = self._cache["pre"]
        outputs = self._cache["outputs"]
        grad_pre = self.activation.backward(self._cast(grad), pre, outputs)

        # Fold any leading (batch, time, ...) dims into one for the matmul.
        flat_in = inputs.reshape(-1, inputs.shape[-1])
        flat_grad = grad_pre.reshape(-1, self.units)
        self._kernel.grad += flat_in.T @ flat_grad
        if self.use_bias:
            self._bias.grad += flat_grad.sum(axis=0)
        return grad_pre @ self._kernel.value.T

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            units=self.units,
            activation=self.activation.name,
            use_bias=self.use_bias,
            kernel_initializer=self.kernel_initializer,
            bias_initializer=self.bias_initializer,
        )
        return config
