"""RepeatVector layer — bridges encoder and decoder in the LSTM autoencoder.

The autoencoder compresses a ``(timesteps, features)`` window into a
single latent vector (the encoder's final hidden state); ``RepeatVector``
tiles that vector back out to ``timesteps`` copies so the decoder LSTM
can unroll a reconstruction of the same length.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class RepeatVector(Layer):
    """Repeat a ``(batch, features)`` input ``n`` times → ``(batch, n, features)``."""

    def __init__(self, n: int, name: str | None = None) -> None:
        super().__init__(name=name)
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.n = int(n)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(f"RepeatVector expects (features,) input, got {input_shape}")
        return (self.n, input_shape[0])

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        inputs = self._cast(inputs)
        if inputs.ndim != 2:
            raise ValueError(f"RepeatVector expects (batch, features) input, got {inputs.shape}")
        return np.repeat(inputs[:, None, :], self.n, axis=1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # Forward broadcast means the backward pass sums over the repeats.
        return self._cast(grad).sum(axis=1)

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(n=self.n)
        return config
