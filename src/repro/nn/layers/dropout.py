"""Inverted dropout layer.

The paper's LSTM autoencoder uses dropout 0.2 between the recurrent
stages to prevent overfitting.  We use *inverted* dropout (activations
scaled by ``1/keep`` at training time) so inference is a plain identity.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.validation import check_probability


class Dropout(Layer):
    """Randomly zeroes a fraction ``rate`` of activations during training.

    The layer owns its own random stream (seeded at build time from the
    model RNG) so training runs are reproducible.
    """

    def __init__(self, rate: float, name: str | None = None) -> None:
        super().__init__(name=name)
        check_probability(rate, "rate")
        if rate >= 1.0:
            raise ValueError(f"rate must be < 1, got {rate}")
        self.rate = float(rate)
        self._rng: np.random.Generator | None = None
        self._mask: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        # Derive a private stream; keeps the layer deterministic under the
        # model seed regardless of other layers' RNG consumption order.
        self._rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
        super().build(input_shape, rng)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._cast(inputs)
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        if self._rng is None:
            raise RuntimeError("Dropout.forward called before build")
        keep = 1.0 - self.rate
        # The mask pattern is always drawn in float64 so a given seed
        # drops the same activations under every dtype policy.
        mask = (self._rng.random(inputs.shape) < keep) / keep
        self._mask = np.asarray(mask, dtype=inputs.dtype)
        return inputs * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return self._cast(grad)
        return self._cast(grad) * self._mask

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(rate=self.rate)
        return config
