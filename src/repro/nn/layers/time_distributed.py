"""TimeDistributed wrapper — apply an inner layer to every timestep.

Used for the autoencoder's output projection (``TimeDistributed(Dense(1))``
in the Keras idiom).  Implementation folds the time axis into the batch
axis, delegates to the inner layer, and unfolds again, so any layer that
operates on ``(batch, features)`` works unchanged.

Folding is allocation-aware: a C-contiguous input folds as a zero-copy
``reshape`` view, and a strided one (transposed workspaces, sliced
batches, the big window batches block-mode streaming pushes through the
autoencoder) is gathered into a per-shape fold buffer that is reused
across calls instead of `.reshape` silently materialising a fresh copy
every forward/backward.
"""

from __future__ import annotations

import numpy as np

from repro.nn import backend as backends
from repro.nn.layers.base import Layer


class TimeDistributed(Layer):
    """Apply ``inner`` independently at every timestep of a 3-D input."""

    _MAX_FOLD_BUFFERS = 8

    def __init__(self, inner: Layer, name: str | None = None) -> None:
        super().__init__(name=name or f"time_distributed_{inner.name}")
        self.inner = inner
        self._timesteps: int | None = None
        self._fold_buffers: dict[tuple, np.ndarray] = {}

    @property
    def backend(self) -> object | None:
        return self._backend_override

    @backend.setter
    def backend(self, value: object | None) -> None:
        # Keep the wrapped layer on the same backend: the inner layer is
        # what actually computes, and it resolves its own dispatch when
        # called without an explicit handle.
        self._backend_override = value
        inner = getattr(self, "inner", None)
        if inner is not None:
            inner.backend = value

    def _fold(self, array: np.ndarray, kind: str) -> np.ndarray:
        """View ``(batch, timesteps, features)`` as ``(batch*timesteps, features)``.

        Zero-copy for C-contiguous input; strided input is gathered into
        a reusable buffer keyed by ``(kind, shape, dtype)`` so repeated
        calls at a steady shape never grow allocations.
        """
        batch, timesteps, features = array.shape
        if array.flags["C_CONTIGUOUS"]:
            return array.reshape(batch * timesteps, features)
        key = (kind, array.shape, array.dtype.str)
        buffer = self._fold_buffers.pop(key, None)
        if buffer is None:
            if len(self._fold_buffers) >= self._MAX_FOLD_BUFFERS:
                self._fold_buffers.pop(next(iter(self._fold_buffers)))
            buffer = np.empty((batch * timesteps, features), dtype=array.dtype)
        self._fold_buffers[key] = buffer  # re-insert: dict order is LRU order
        np.copyto(buffer.reshape(array.shape), array)
        return buffer

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"TimeDistributed expects (timesteps, features) input, got {input_shape}"
            )
        self._timesteps = int(input_shape[0])
        if self.inner.dtype is None:
            self.inner.dtype = self.dtype
        self.inner.build((input_shape[1],), rng)
        # Adopt the inner layer's variables so the optimizer sees them.
        self._variables = list(self.inner.variables)
        super().build(input_shape, rng)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        inner_shape = self.inner.compute_output_shape((input_shape[1],))
        return (input_shape[0],) + tuple(inner_shape)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._cast(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"TimeDistributed expects (batch, timesteps, features), got {inputs.shape}"
            )
        batch, timesteps, _ = inputs.shape
        outputs = self.inner.forward(self._fold(inputs, "forward"), training=training)
        # Inner layers emit freshly-written contiguous outputs, so the
        # unfold is a view; np.reshape copies only if that ever changes.
        return np.reshape(outputs, (batch, timesteps, -1))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self._cast(grad)
        batch, timesteps, _ = grad.shape
        grad_inputs = self.inner.backward(self._fold(grad, "backward"))
        return np.reshape(grad_inputs, (batch, timesteps, -1))

    def infer(self, inputs: np.ndarray, backend: object | None = None) -> np.ndarray:
        inputs = self._cast(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"TimeDistributed expects (batch, timesteps, features), got {inputs.shape}"
            )
        batch, timesteps, _ = inputs.shape
        bk = backend if backend is not None else backends.resolve_backend(self.backend)
        outputs = self.inner.infer(self._fold(inputs, "infer"), backend=bk)
        return np.reshape(outputs, (batch, timesteps, -1))

    def zero_grads(self) -> None:
        self.inner.zero_grads()

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(inner=self.inner.get_config(), inner_class=type(self.inner).__name__)
        return config
