"""TimeDistributed wrapper — apply an inner layer to every timestep.

Used for the autoencoder's output projection (``TimeDistributed(Dense(1))``
in the Keras idiom).  Implementation folds the time axis into the batch
axis, delegates to the inner layer, and unfolds again, so any layer that
operates on ``(batch, features)`` works unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer


class TimeDistributed(Layer):
    """Apply ``inner`` independently at every timestep of a 3-D input."""

    def __init__(self, inner: Layer, name: str | None = None) -> None:
        super().__init__(name=name or f"time_distributed_{inner.name}")
        self.inner = inner
        self._timesteps: int | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"TimeDistributed expects (timesteps, features) input, got {input_shape}"
            )
        self._timesteps = int(input_shape[0])
        if self.inner.dtype is None:
            self.inner.dtype = self.dtype
        self.inner.build((input_shape[1],), rng)
        # Adopt the inner layer's variables so the optimizer sees them.
        self._variables = list(self.inner.variables)
        super().build(input_shape, rng)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        inner_shape = self.inner.compute_output_shape((input_shape[1],))
        return (input_shape[0],) + tuple(inner_shape)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = self._cast(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"TimeDistributed expects (batch, timesteps, features), got {inputs.shape}"
            )
        batch, timesteps, features = inputs.shape
        folded = inputs.reshape(batch * timesteps, features)
        outputs = self.inner.forward(folded, training=training)
        return outputs.reshape(batch, timesteps, -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = self._cast(grad)
        batch, timesteps, features = grad.shape
        folded = grad.reshape(batch * timesteps, features)
        grad_inputs = self.inner.backward(folded)
        return grad_inputs.reshape(batch, timesteps, -1)

    def zero_grads(self) -> None:
        self.inner.zero_grads()

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(inner=self.inner.get_config(), inner_class=type(self.inner).__name__)
        return config
