"""Layer and trainable-variable abstractions.

A :class:`Layer` owns zero or more :class:`Variable` objects.  Forward
passes cache whatever the matching backward pass needs; backward passes
fill each variable's ``grad`` and return the gradient with respect to the
layer input.  The :class:`~repro.nn.model.Sequential` model chains layers
and hands the variable list to an optimizer.

Shapes follow the Keras convention: the batch dimension is implicit, so
``input_shape`` / ``output_shape`` describe a single sample, e.g.
``(timesteps, features)`` for sequence input.

Precision: each variable/layer has a fixed dtype decided at build time
from the :mod:`repro.nn.policy` (float32 by default, float64 opt-in).
"""

from __future__ import annotations

import numpy as np

from repro.nn import policy


class Variable:
    """A trainable tensor with an associated gradient buffer.

    The identity of a ``Variable`` is stable for the lifetime of its
    layer: weight loading assigns into ``value`` in place, so optimizer
    slot state (e.g. Adam moments) keyed by variable identity survives
    checkpoint round-trips.

    ``version`` counts value mutations; layers use it to invalidate
    cached derived tensors (e.g. the LSTM's packed gate kernels).  It is
    bumped by :meth:`assign` and by optimizer steps.  Code that mutates
    ``value`` in place through a view (e.g. finite-difference probing)
    must call :meth:`touch` afterwards.
    """

    def __init__(self, name: str, value: np.ndarray, dtype: object | None = None) -> None:
        self.name = name
        value = np.asarray(value)
        if dtype is None:
            # Preserve an explicit float precision; anything else (ints,
            # lists, ...) is promoted to the active policy dtype.
            if value.dtype in policy.ALLOWED_DTYPES:
                dtype = value.dtype
            else:
                dtype = policy.resolve_dtype(None)
        self.value = np.asarray(value, dtype=policy.resolve_dtype(dtype))
        self.grad = np.zeros_like(self.value)
        self.version = 0

    @property
    def dtype(self) -> np.dtype:
        return self.value.dtype

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def touch(self) -> None:
        """Mark the value as mutated (invalidates derived caches)."""
        self.version += 1

    def assign(self, value: np.ndarray) -> None:
        """Overwrite the value in place, preserving identity, shape, dtype."""
        value = np.asarray(value)
        if value.shape != self.value.shape:
            raise ValueError(
                f"cannot assign shape {value.shape} to variable "
                f"{self.name!r} of shape {self.value.shape}"
            )
        self.value[...] = value
        self.touch()

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, shape={self.value.shape}, dtype={self.dtype.name})"


class Layer:
    """Base class for all layers.

    Lifecycle: construct → :meth:`build` (allocates variables, given the
    per-sample input shape and an RNG) → repeated :meth:`forward` /
    :meth:`backward`.  ``forward(..., training=True)`` enables stochastic
    behaviour (dropout); inference passes are deterministic.

    ``dtype`` is resolved at build time: the model threads its own dtype
    down before building; standalone layers fall back to the global
    policy.  ``None`` before build means "not yet decided".
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__.lower()
        self.built = False
        self._variables: list[Variable] = []
        self.input_shape: tuple[int, ...] | None = None
        self.dtype: np.dtype | None = None
        #: Per-layer compute-backend override (name or Backend instance).
        #: ``None`` follows the runtime resolution order (model override >
        #: process default > ``REPRO_BACKEND`` > numpy); see
        #: :mod:`repro.nn.backend`.  Runtime config only — never serialized.
        self.backend: object | None = None

    # -- lifecycle -----------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate variables.  Subclasses must call ``super().build``."""
        if self.dtype is None:
            self.dtype = policy.resolve_dtype(None)
        self.input_shape = tuple(input_shape)
        self.built = True

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape given per-sample input shape."""
        return tuple(input_shape)

    # -- computation ----------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop: fill variable grads, return gradient w.r.t. inputs."""
        raise NotImplementedError

    def infer(self, inputs: np.ndarray, backend: object | None = None) -> np.ndarray:
        """Inference-only forward: no backward pass will follow.

        Defaults to ``forward(training=False)``; layers whose forward
        maintains expensive training caches (the LSTM's per-timestep
        BPTT tensors) override this with a leaner state-only path.
        ``backward`` after ``infer`` is undefined — call ``forward``
        when gradients are needed.

        ``backend`` is an already-resolved compute backend handed down by
        :meth:`Sequential.infer` so chunked prediction resolves dispatch
        once per call, not once per chunk per layer; ``None`` makes the
        layer resolve its own (compute layers override this method).
        """
        del backend
        return self.forward(inputs, training=False)

    def _cast(self, array: np.ndarray) -> np.ndarray:
        """View ``array`` in this layer's dtype (no copy when it matches)."""
        return np.asarray(array, dtype=self.dtype)

    # -- variables ------------------------------------------------------
    def add_variable(
        self,
        name: str,
        shape: tuple[int, ...],
        initializer,
        rng: np.random.Generator,
    ) -> Variable:
        """Create, register and return a trainable variable."""
        if self.dtype is None:
            self.dtype = policy.resolve_dtype(None)
        try:
            value = initializer(shape, rng, dtype=self.dtype)
        except TypeError:
            # Custom initializers may predate the dtype parameter; the
            # Variable constructor casts their output.
            value = initializer(shape, rng)
        variable = Variable(f"{self.name}/{name}", value, dtype=self.dtype)
        self._variables.append(variable)
        return variable

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables)

    def count_params(self) -> int:
        return sum(v.size for v in self._variables)

    def zero_grads(self) -> None:
        for variable in self._variables:
            variable.zero_grad()

    # -- serialization ---------------------------------------------------
    def get_config(self) -> dict:
        """JSON-serialisable constructor arguments (subclasses extend)."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, built={self.built})"
