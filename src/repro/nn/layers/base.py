"""Layer and trainable-variable abstractions.

A :class:`Layer` owns zero or more :class:`Variable` objects.  Forward
passes cache whatever the matching backward pass needs; backward passes
fill each variable's ``grad`` and return the gradient with respect to the
layer input.  The :class:`~repro.nn.model.Sequential` model chains layers
and hands the variable list to an optimizer.

Shapes follow the Keras convention: the batch dimension is implicit, so
``input_shape`` / ``output_shape`` describe a single sample, e.g.
``(timesteps, features)`` for sequence input.
"""

from __future__ import annotations

import numpy as np


class Variable:
    """A trainable tensor with an associated gradient buffer.

    The identity of a ``Variable`` is stable for the lifetime of its
    layer: weight loading assigns into ``value`` in place, so optimizer
    slot state (e.g. Adam moments) keyed by variable identity survives
    checkpoint round-trips.
    """

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def assign(self, value: np.ndarray) -> None:
        """Overwrite the value in place, preserving identity and shape."""
        value = np.asarray(value, dtype=np.float64)
        if value.shape != self.value.shape:
            raise ValueError(
                f"cannot assign shape {value.shape} to variable "
                f"{self.name!r} of shape {self.value.shape}"
            )
        self.value[...] = value

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Lifecycle: construct → :meth:`build` (allocates variables, given the
    per-sample input shape and an RNG) → repeated :meth:`forward` /
    :meth:`backward`.  ``forward(..., training=True)`` enables stochastic
    behaviour (dropout); inference passes are deterministic.
    """

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__.lower()
        self.built = False
        self._variables: list[Variable] = []
        self.input_shape: tuple[int, ...] | None = None

    # -- lifecycle -----------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate variables.  Subclasses must call ``super().build``."""
        self.input_shape = tuple(input_shape)
        self.built = True

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-sample output shape given per-sample input shape."""
        return tuple(input_shape)

    # -- computation ----------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backprop: fill variable grads, return gradient w.r.t. inputs."""
        raise NotImplementedError

    # -- variables ------------------------------------------------------
    def add_variable(
        self,
        name: str,
        shape: tuple[int, ...],
        initializer,
        rng: np.random.Generator,
    ) -> Variable:
        """Create, register and return a trainable variable."""
        variable = Variable(f"{self.name}/{name}", initializer(shape, rng))
        self._variables.append(variable)
        return variable

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables)

    def count_params(self) -> int:
        return sum(v.size for v in self._variables)

    def zero_grads(self) -> None:
        for variable in self._variables:
            variable.zero_grad()

    # -- serialization ---------------------------------------------------
    def get_config(self) -> dict:
        """JSON-serialisable constructor arguments (subclasses extend)."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, built={self.built})"
