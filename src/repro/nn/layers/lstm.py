"""LSTM layer with hand-derived backpropagation through time (BPTT).

This is the workhorse of the reproduction: both the forecaster
(``LSTM(50) → Dense(10, relu) → Dense(1)``) and the anomaly-detection
autoencoder (``LSTM 50→25 / 25→50``) are built from this layer.

Gate equations (Keras/standard orientation, gate order ``i, f, g, o``)::

    z_t = x_t @ W_x + h_{t-1} @ W_h + b            # (batch, 4 * units)
    i_t = sigmoid(z_i)    f_t = sigmoid(z_f)
    g_t = tanh(z_g)       o_t = sigmoid(z_o)
    c_t = f_t * c_{t-1} + i_t * g_t
    h_t = o_t * tanh(c_t)

The forward pass caches per-timestep tensors; the backward pass walks the
sequence in reverse accumulating the recurrent gradients.  Gradients are
verified against central finite differences in ``tests/nn/test_gradcheck.py``.

Fused compute engine
--------------------
The public weight layout stays Keras-compatible (columns ordered
``i, f, g, o``), but internally the kernels are *packed* into the gate
order ``i, f, o, g`` so the three sigmoid gates form one contiguous
block.  The per-timestep step itself (recurrent matmul + gate
activations + state update) is dispatched through the pluggable
:mod:`repro.nn.backend` registry — the default ``"numpy"`` backend
applies a single fused in-place sigmoid over ``z[:, :3U]`` and one
in-place tanh over ``z[:, 3U:]``, while the optional ``"numba"`` backend
compiles the whole elementwise chain into one batch-parallel kernel.
All per-timestep tensors (gate pre-activations, cell states, hidden
states, matmul outputs) live in per-layer workspaces keyed by
``(batch, timesteps)`` and are reused across calls — the hot loops in
both ``forward`` and the BPTT backward allocate nothing.  Backends
accelerate the forward direction only; BPTT always runs the numpy path
against the (backend-written) activated-gate caches.

The packed kernels and their transposes are cached and refreshed only
when a weight's :attr:`~repro.nn.layers.base.Variable.version` changes
(weight assignment and optimizer steps bump it; in-place mutation through
a raw view must call ``Variable.touch()``).

Workspaces are time-major (``(T, B, ...)``) so every per-timestep slice
is contiguous.  Because workspaces are reused, a layer instance must not
be driven from multiple threads concurrently (models are cheap — use one
per thread, as the federated runtime does).
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn import backend as backends
from repro.nn.layers.base import Layer

#: Workspaces retained per layer; least-recently-used shapes are evicted
#: beyond this, so transient batch sizes (streaming warmup, ragged station
#: schedules) cannot push out the hot steady-state shape.
_MAX_WORKSPACES = 16

#: Inference workspaces above this batch size are tens of MB each, so at
#: most _MAX_LARGE_INFER of them stay cached: a steady large-block loop
#: keeps reusing its workspace, but a one-off calibration pass over a
#: huge window set cannot pin several giant buffers for process lifetime.
_LARGE_INFER_BATCH = 8192
_MAX_LARGE_INFER = 2


class LSTM(Layer):
    """Long Short-Term Memory layer.

    Parameters
    ----------
    units:
        Hidden/cell state dimensionality.
    return_sequences:
        If ``True`` the layer outputs the full hidden-state sequence
        ``(batch, timesteps, units)``; otherwise only the final hidden
        state ``(batch, units)`` (Keras semantics).
    unit_forget_bias:
        Initialise the forget-gate bias to 1.0 (Keras default), which
        stabilises early training of gated recurrent nets.
    kernel_initializer / recurrent_initializer:
        Defaults match Keras: Glorot-uniform input kernel, orthogonal
        recurrent kernel.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        unit_forget_bias: bool = True,
        kernel_initializer: str = "glorot_uniform",
        recurrent_initializer: str = "orthogonal",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.unit_forget_bias = bool(unit_forget_bias)
        self.kernel_initializer = kernel_initializer
        self.recurrent_initializer = recurrent_initializer
        self._kernel = None  # (features, 4 * units), gate order (i, f, g, o)
        self._recurrent = None  # (units, 4 * units)
        self._bias = None  # (4 * units,)
        self._cache: dict[str, object] = {}
        self._workspaces: dict[tuple[int, int], dict[str, np.ndarray]] = {}
        self._infer_workspaces: dict[int, dict[str, np.ndarray]] = {}
        self._packed: dict[str, np.ndarray] = {}
        self._packed_versions: tuple[int, int, int] | None = None
        self._perm: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"LSTM expects (timesteps, features) input shape, got {input_shape}"
            )
        features = int(input_shape[-1])
        self._kernel = self.add_variable(
            "kernel",
            (features, 4 * self.units),
            initializers.get(self.kernel_initializer),
            rng,
        )
        self._recurrent = self.add_variable(
            "recurrent_kernel",
            (self.units, 4 * self.units),
            initializers.get(self.recurrent_initializer),
            rng,
        )
        self._bias = self.add_variable("bias", (4 * self.units,), initializers.zeros, rng)
        if self.unit_forget_bias:
            # Gate order is (i, f, g, o): slots [units:2*units] are the forget gate.
            self._bias.value[self.units : 2 * self.units] = 1.0
            self._bias.touch()
        super().build(input_shape, rng)

        units = self.units
        dtype = self.dtype
        # Packed layout (i, f, o, g): sigmoid gates first, tanh gate last.
        self._perm = np.concatenate(
            [
                np.arange(0, 2 * units),              # i, f
                np.arange(3 * units, 4 * units),      # o
                np.arange(2 * units, 3 * units),      # g
            ]
        )
        self._packed = {
            "kernel": np.empty((features, 4 * units), dtype=dtype),
            "recurrent": np.empty((units, 4 * units), dtype=dtype),
            "bias": np.empty((4 * units,), dtype=dtype),
            "kernel_t": np.empty((4 * units, features), dtype=dtype),
            "recurrent_t": np.empty((4 * units, units), dtype=dtype),
        }
        self._packed_versions = None
        # Parameter-gradient staging buffers (packed layout, bulk matmuls).
        self._pg_kernel = np.empty((4 * units, features), dtype=dtype)
        self._pg_recurrent = np.empty((4 * units, units), dtype=dtype)
        self._pg_bias = np.empty((4 * units,), dtype=dtype)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        timesteps = input_shape[0]
        if self.return_sequences:
            return (timesteps, self.units)
        return (self.units,)

    # -- workspace / packed-kernel management ---------------------------
    def _refresh_packed(self) -> dict[str, np.ndarray]:
        versions = (self._kernel.version, self._recurrent.version, self._bias.version)
        if versions != self._packed_versions:
            packed = self._packed
            np.take(self._kernel.value, self._perm, axis=1, out=packed["kernel"])
            np.take(self._recurrent.value, self._perm, axis=1, out=packed["recurrent"])
            np.take(self._bias.value, self._perm, axis=0, out=packed["bias"])
            packed["kernel_t"][...] = packed["kernel"].T
            packed["recurrent_t"][...] = packed["recurrent"].T
            self._packed_versions = versions
        return self._packed

    def _workspace(self, batch: int, timesteps: int) -> dict[str, np.ndarray]:
        key = (batch, timesteps)
        ws = self._workspaces.pop(key, None)
        if ws is not None:
            self._workspaces[key] = ws  # re-insert: dict order is LRU order
        else:
            units = self.units
            features = int(self.input_shape[-1])
            dtype = self.dtype
            b_u = (batch, units)
            ws = {
                # Time-major sequence tensors (contiguous per-step slices).
                "x_tm": np.empty((timesteps, batch, features), dtype=dtype),
                "z": np.empty((timesteps, batch, 4 * units), dtype=dtype),
                "hs": np.empty((timesteps, batch, units), dtype=dtype),
                "cs": np.empty((timesteps, batch, units), dtype=dtype),
                "tanh_cs": np.empty((timesteps, batch, units), dtype=dtype),
                "dz": np.empty((timesteps, batch, 4 * units), dtype=dtype),
                "gi_tm": np.empty((timesteps, batch, features), dtype=dtype),
                # Per-step scratch.
                "state0": np.zeros(b_u, dtype=dtype),  # h_{-1} = c_{-1} = 0
                "hz": np.empty((batch, 4 * units), dtype=dtype),
                "tmp_u": np.empty(b_u, dtype=dtype),
                "dh": np.empty(b_u, dtype=dtype),
                "dh_next": np.empty(b_u, dtype=dtype),
                "dc": np.empty(b_u, dtype=dtype),
                "dc_next": np.empty(b_u, dtype=dtype),
                "do": np.empty(b_u, dtype=dtype),
                # Fused-sigmoid scratch over the (i, f, o) block.
                "sig_work": np.empty((batch, 3 * units), dtype=dtype),
                "sig_num": np.empty((batch, 3 * units), dtype=dtype),
                "sig_neg": np.empty((batch, 3 * units), dtype=bool),
            }
            if len(self._workspaces) >= _MAX_WORKSPACES:
                self._workspaces.pop(next(iter(self._workspaces)))
            self._workspaces[key] = ws
        return ws

    def _infer_workspace(self, batch: int) -> dict[str, np.ndarray]:
        ws = self._infer_workspaces.pop(batch, None)
        if ws is not None:
            self._infer_workspaces[batch] = ws  # re-insert: dict order is LRU order
        else:
            units = self.units
            features = int(self.input_shape[-1])
            dtype = self.dtype
            ws = {
                "x_t": np.empty((batch, features), dtype=dtype),
                "z": np.empty((batch, 4 * units), dtype=dtype),
                "hz": np.empty((batch, 4 * units), dtype=dtype),
                "h": np.empty((batch, units), dtype=dtype),
                "c": np.empty((batch, units), dtype=dtype),
                "tanh_c": np.empty((batch, units), dtype=dtype),
                "tmp_u": np.empty((batch, units), dtype=dtype),
                "sig_work": np.empty((batch, 3 * units), dtype=dtype),
                "sig_num": np.empty((batch, 3 * units), dtype=dtype),
                "sig_neg": np.empty((batch, 3 * units), dtype=bool),
            }
            if len(self._infer_workspaces) >= _MAX_WORKSPACES:
                self._infer_workspaces.pop(next(iter(self._infer_workspaces)))
            self._infer_workspaces[batch] = ws
            large = [b for b in self._infer_workspaces if b > _LARGE_INFER_BATCH]
            while len(large) > _MAX_LARGE_INFER:
                self._infer_workspaces.pop(large.pop(0))  # oldest large first
        return ws

    def infer(self, inputs: np.ndarray, backend: object | None = None) -> np.ndarray:
        """Cache-free forward pass for inference.

        Same gate math as :meth:`forward` (same fused kernels via the
        same backend — outputs are bit-identical) but keeps only the
        running ``h``/``c`` state instead of per-timestep BPTT caches, so
        the working set is O(batch) and stays cache-resident no matter
        how many windows one call scores.  That is what lets block-mode
        streaming push ``B × n_stations`` windows through in ONE call:
        per-ufunc dispatch amortises over the whole block while memory
        traffic stays flat.  ``backward`` after ``infer`` is undefined.

        ``backend`` is an already-resolved backend handle (chunked
        callers resolve once); ``None`` resolves per call, never per step.
        """
        inputs = self._cast(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects (batch, timesteps, features) input, got {inputs.shape}"
            )
        bk = backend if backend is not None else backends.resolve_backend(self.backend)
        batch, timesteps, _ = inputs.shape
        units = self.units
        packed = self._refresh_packed()
        ws = self._infer_workspace(batch)

        kernel, recurrent, bias = packed["kernel"], packed["recurrent"], packed["bias"]
        x_t, z = ws["x_t"], ws["z"]
        h, c, tanh_c = ws["h"], ws["c"], ws["tanh_c"]
        h.fill(0.0)
        c.fill(0.0)
        out_seq = (
            np.empty((batch, timesteps, units), dtype=self.dtype)
            if self.return_sequences
            else None
        )

        for t in range(timesteps):
            np.copyto(x_t, inputs[:, t, :])
            np.matmul(x_t, kernel, out=z)
            z += bias
            # Fused step: recurrent matmul + gate activations + in-place
            # state update, one backend kernel.
            bk.lstm_step(z, h, c, c, h, tanh_c, recurrent, ws)
            if out_seq is not None:
                out_seq[:, t, :] = h

        if out_seq is not None:
            return out_seq
        return h.copy()

    # -- computation ----------------------------------------------------
    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        inputs = self._cast(inputs)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects (batch, timesteps, features) input, got {inputs.shape}"
            )
        bk = backends.resolve_backend(self.backend)
        batch, timesteps, features = inputs.shape
        units = self.units
        packed = self._refresh_packed()
        ws = self._workspace(batch, timesteps)

        # Input contribution for every timestep in one matmul, computed in
        # the time-major workspace so each per-step slice is contiguous.
        x_tm = ws["x_tm"]
        x_tm[...] = inputs.transpose(1, 0, 2)
        z = ws["z"]
        np.matmul(
            x_tm.reshape(timesteps * batch, features),
            packed["kernel"],
            out=z.reshape(timesteps * batch, 4 * units),
        )
        z += packed["bias"]

        hs, cs, tanh_cs = ws["hs"], ws["cs"], ws["tanh_cs"]
        recurrent = packed["recurrent"]
        h = ws["state0"]  # never written: stays all-zero for reuse
        c = ws["state0"]

        for t in range(timesteps):
            # Fused step (backend-dispatched, resolved once above): the
            # recurrent matmul, gate activations (written back into z[t]
            # for the BPTT cache) and the state update into cs/hs/tanh_cs.
            bk.lstm_step(z[t], h, c, cs[t], hs[t], tanh_cs[t], recurrent, ws)
            h = hs[t]
            c = cs[t]

        self._cache = {"inputs": inputs, "ws": ws, "shape": (batch, timesteps, features)}
        # Fresh output array: callers may hold results across calls while
        # the workspaces are recycled.
        if self.return_sequences:
            out = np.empty((batch, timesteps, units), dtype=self.dtype)
            out[...] = hs.transpose(1, 0, 2)
            return out
        return hs[timesteps - 1].copy()

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called before forward")
        inputs: np.ndarray = self._cache["inputs"]  # type: ignore[assignment]
        ws: dict[str, np.ndarray] = self._cache["ws"]  # type: ignore[assignment]
        batch, timesteps, features = self._cache["shape"]  # type: ignore[misc]
        units = self.units
        packed = self._refresh_packed()

        grad = self._cast(grad)
        if self.return_sequences:
            expected = (batch, timesteps, units)
            if grad.shape != expected:
                raise ValueError(f"gradient shape {grad.shape} != output shape {expected}")
            grad_tm = grad.transpose(1, 0, 2)  # view, read-only use
        else:
            expected = (batch, units)
            if grad.shape != expected:
                raise ValueError(f"gradient shape {grad.shape} != output shape {expected}")
            grad_tm = None

        z, hs, cs, tanh_cs = ws["z"], ws["hs"], ws["cs"], ws["tanh_cs"]
        dz_all, gi_tm = ws["dz"], ws["gi_tm"]
        dh, dh_next = ws["dh"], ws["dh_next"]
        dc, dc_next = ws["dc"], ws["dc_next"]
        do = ws["do"]
        tmp = ws["tmp_u"]
        zeros_state = ws["state0"]
        kernel_t = packed["kernel_t"]
        recurrent_t = packed["recurrent_t"]
        dh_next.fill(0.0)
        dc_next.fill(0.0)

        for t in range(timesteps - 1, -1, -1):
            z_t = z[t]
            i = z_t[:, :units]
            f = z_t[:, units : 2 * units]
            o = z_t[:, 2 * units : 3 * units]
            g = z_t[:, 3 * units :]
            tanh_c = tanh_cs[t]
            c_prev = cs[t - 1] if t > 0 else zeros_state

            if grad_tm is not None:
                np.add(grad_tm[t], dh_next, out=dh)
            elif t == timesteps - 1:
                np.add(grad, dh_next, out=dh)
            else:
                dh[...] = dh_next

            # do = dh * tanh_c
            np.multiply(dh, tanh_c, out=do)
            # dc = dh * o * (1 - tanh_c^2) + dc_next
            np.multiply(tanh_c, tanh_c, out=dc)
            np.subtract(1.0, dc, out=dc)
            dc *= o
            dc *= dh
            dc += dc_next

            dz_t = dz_all[t]
            dz_i = dz_t[:, :units]
            dz_f = dz_t[:, units : 2 * units]
            dz_o = dz_t[:, 2 * units : 3 * units]
            dz_g = dz_t[:, 3 * units :]
            # dz_i = (dc * g) * i * (1 - i)
            np.multiply(dc, g, out=tmp)
            np.subtract(1.0, i, out=dz_i)
            dz_i *= i
            dz_i *= tmp
            # dz_f = (dc * c_prev) * f * (1 - f)
            np.multiply(dc, c_prev, out=tmp)
            np.subtract(1.0, f, out=dz_f)
            dz_f *= f
            dz_f *= tmp
            # dz_o = do * o * (1 - o)
            np.subtract(1.0, o, out=dz_o)
            dz_o *= o
            dz_o *= do
            # dz_g = (dc * i) * (1 - g^2)
            np.multiply(g, g, out=dz_g)
            np.subtract(1.0, dz_g, out=dz_g)
            dz_g *= i
            dz_g *= dc
            # dc_next = dc * f (before dc is reused next iteration)
            np.multiply(dc, f, out=dc_next)

            np.matmul(dz_t, recurrent_t, out=dh_next)
            np.matmul(dz_t, kernel_t, out=gi_tm[t])

        # Parameter gradients in bulk matmuls over the flattened time axis,
        # staged in packed gate order then scattered to the public layout.
        perm = self._perm
        flat_dz = dz_all.reshape(timesteps * batch, 4 * units)
        np.matmul(flat_dz.T, ws["x_tm"].reshape(timesteps * batch, features),
                  out=self._pg_kernel)
        self._kernel.grad[:, perm] += self._pg_kernel.T
        np.sum(flat_dz, axis=0, out=self._pg_bias)
        self._bias.grad[perm] += self._pg_bias
        # Recurrent gradient pairs h_{t-1} with dz_t; h_{-1} is zero.
        if timesteps > 1:
            np.matmul(
                dz_all[1:].reshape((timesteps - 1) * batch, 4 * units).T,
                hs[:-1].reshape((timesteps - 1) * batch, units),
                out=self._pg_recurrent,
            )
            self._recurrent.grad[:, perm] += self._pg_recurrent.T

        grad_inputs = np.empty_like(inputs)
        grad_inputs[...] = gi_tm.transpose(1, 0, 2)
        return grad_inputs

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            units=self.units,
            return_sequences=self.return_sequences,
            unit_forget_bias=self.unit_forget_bias,
            kernel_initializer=self.kernel_initializer,
            recurrent_initializer=self.recurrent_initializer,
        )
        return config
