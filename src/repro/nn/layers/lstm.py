"""LSTM layer with hand-derived backpropagation through time (BPTT).

This is the workhorse of the reproduction: both the forecaster
(``LSTM(50) → Dense(10, relu) → Dense(1)``) and the anomaly-detection
autoencoder (``LSTM 50→25 / 25→50``) are built from this layer.

Gate equations (Keras/standard orientation, gate order ``i, f, g, o``)::

    z_t = x_t @ W_x + h_{t-1} @ W_h + b            # (batch, 4 * units)
    i_t = sigmoid(z_i)    f_t = sigmoid(z_f)
    g_t = tanh(z_g)       o_t = sigmoid(z_o)
    c_t = f_t * c_{t-1} + i_t * g_t
    h_t = o_t * tanh(c_t)

The forward pass caches per-timestep tensors; the backward pass walks the
sequence in reverse accumulating the recurrent gradients.  Gradients are
verified against central finite differences in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import initializers
from repro.nn.activations import sigmoid
from repro.nn.layers.base import Layer


class LSTM(Layer):
    """Long Short-Term Memory layer.

    Parameters
    ----------
    units:
        Hidden/cell state dimensionality.
    return_sequences:
        If ``True`` the layer outputs the full hidden-state sequence
        ``(batch, timesteps, units)``; otherwise only the final hidden
        state ``(batch, units)`` (Keras semantics).
    unit_forget_bias:
        Initialise the forget-gate bias to 1.0 (Keras default), which
        stabilises early training of gated recurrent nets.
    kernel_initializer / recurrent_initializer:
        Defaults match Keras: Glorot-uniform input kernel, orthogonal
        recurrent kernel.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        unit_forget_bias: bool = True,
        kernel_initializer: str = "glorot_uniform",
        recurrent_initializer: str = "orthogonal",
        name: str | None = None,
    ) -> None:
        super().__init__(name=name)
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.unit_forget_bias = bool(unit_forget_bias)
        self.kernel_initializer = kernel_initializer
        self.recurrent_initializer = recurrent_initializer
        self._kernel = None  # (features, 4 * units)
        self._recurrent = None  # (units, 4 * units)
        self._bias = None  # (4 * units,)
        self._cache: dict[str, object] = {}

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"LSTM expects (timesteps, features) input shape, got {input_shape}"
            )
        features = int(input_shape[-1])
        self._kernel = self.add_variable(
            "kernel",
            (features, 4 * self.units),
            initializers.get(self.kernel_initializer),
            rng,
        )
        self._recurrent = self.add_variable(
            "recurrent_kernel",
            (self.units, 4 * self.units),
            initializers.get(self.recurrent_initializer),
            rng,
        )
        self._bias = self.add_variable("bias", (4 * self.units,), initializers.zeros, rng)
        if self.unit_forget_bias:
            # Gate order is (i, f, g, o): slots [units:2*units] are the forget gate.
            self._bias.value[self.units : 2 * self.units] = 1.0
        super().build(input_shape, rng)

    def compute_output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        timesteps = input_shape[0]
        if self.return_sequences:
            return (timesteps, self.units)
        return (self.units,)

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 3:
            raise ValueError(
                f"LSTM expects (batch, timesteps, features) input, got {inputs.shape}"
            )
        batch, timesteps, _ = inputs.shape
        units = self.units

        # Input contribution for every timestep in one matmul.
        z_input = inputs @ self._kernel.value + self._bias.value  # (B, T, 4U)

        h = np.zeros((batch, units))
        c = np.zeros((batch, units))
        hs = np.empty((batch, timesteps, units))
        cs = np.empty((batch, timesteps, units))
        gates = np.empty((batch, timesteps, 4 * units))
        tanh_cs = np.empty((batch, timesteps, units))

        for t in range(timesteps):
            z = z_input[:, t, :] + h @ self._recurrent.value
            i = sigmoid(z[:, :units])
            f = sigmoid(z[:, units : 2 * units])
            g = np.tanh(z[:, 2 * units : 3 * units])
            o = sigmoid(z[:, 3 * units :])
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c

            gates[:, t, :units] = i
            gates[:, t, units : 2 * units] = f
            gates[:, t, 2 * units : 3 * units] = g
            gates[:, t, 3 * units :] = o
            cs[:, t, :] = c
            hs[:, t, :] = h
            tanh_cs[:, t, :] = tanh_c

        self._cache = {"inputs": inputs, "hs": hs, "cs": cs, "gates": gates, "tanh_cs": tanh_cs}
        if self.return_sequences:
            return hs
        return hs[:, -1, :]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called before forward")
        inputs: np.ndarray = self._cache["inputs"]  # type: ignore[assignment]
        hs: np.ndarray = self._cache["hs"]  # type: ignore[assignment]
        cs: np.ndarray = self._cache["cs"]  # type: ignore[assignment]
        gates: np.ndarray = self._cache["gates"]  # type: ignore[assignment]
        tanh_cs: np.ndarray = self._cache["tanh_cs"]  # type: ignore[assignment]
        batch, timesteps, _ = inputs.shape
        units = self.units

        grad = np.asarray(grad, dtype=np.float64)
        if self.return_sequences:
            if grad.shape != hs.shape:
                raise ValueError(f"gradient shape {grad.shape} != output shape {hs.shape}")
            grad_hs = grad
        else:
            expected = (batch, units)
            if grad.shape != expected:
                raise ValueError(f"gradient shape {grad.shape} != output shape {expected}")
            grad_hs = np.zeros_like(hs)
            grad_hs[:, -1, :] = grad

        grad_inputs = np.empty_like(inputs)
        grad_z_all = np.empty((batch, timesteps, 4 * units))
        dh_next = np.zeros((batch, units))
        dc_next = np.zeros((batch, units))
        recurrent_t = self._recurrent.value.T

        for t in range(timesteps - 1, -1, -1):
            i = gates[:, t, :units]
            f = gates[:, t, units : 2 * units]
            g = gates[:, t, 2 * units : 3 * units]
            o = gates[:, t, 3 * units :]
            tanh_c = tanh_cs[:, t, :]
            c_prev = cs[:, t - 1, :] if t > 0 else np.zeros((batch, units))

            dh = grad_hs[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c * tanh_c) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f

            dz = np.empty((batch, 4 * units))
            dz[:, :units] = di * i * (1.0 - i)
            dz[:, units : 2 * units] = df * f * (1.0 - f)
            dz[:, 2 * units : 3 * units] = dg * (1.0 - g * g)
            dz[:, 3 * units :] = do * o * (1.0 - o)

            grad_z_all[:, t, :] = dz
            dh_next = dz @ recurrent_t
            grad_inputs[:, t, :] = dz @ self._kernel.value.T

        # Parameter gradients in bulk matmuls over the flattened time axis.
        flat_inputs = inputs.reshape(batch * timesteps, -1)
        flat_dz = grad_z_all.reshape(batch * timesteps, 4 * units)
        self._kernel.grad += flat_inputs.T @ flat_dz
        self._bias.grad += flat_dz.sum(axis=0)
        # Recurrent gradient pairs h_{t-1} with dz_t; h_{-1} is zero.
        if timesteps > 1:
            h_prev = hs[:, :-1, :].reshape(batch * (timesteps - 1), units)
            dz_next = grad_z_all[:, 1:, :].reshape(batch * (timesteps - 1), 4 * units)
            self._recurrent.grad += h_prev.T @ dz_next
        return grad_inputs

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(
            units=self.units,
            return_sequences=self.return_sequences,
            unit_forget_bias=self.unit_forget_bias,
            kernel_initializer=self.kernel_initializer,
            recurrent_initializer=self.recurrent_initializer,
        )
        return config
