"""Standalone activation layer (for architectures that separate them)."""

from __future__ import annotations

import numpy as np

from repro.nn import activations
from repro.nn.layers.base import Layer


class Activation(Layer):
    """Apply a named activation element-wise."""

    def __init__(self, activation: str, name: str | None = None) -> None:
        super().__init__(name=name)
        self.activation = activations.get(activation)
        self._cache: dict[str, np.ndarray] = {}

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        del training
        inputs = self._cast(inputs)
        outputs = self.activation.forward(inputs)
        self._cache = {"inputs": inputs, "outputs": outputs}
        return outputs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if not self._cache:
            raise RuntimeError("backward called before forward")
        return self.activation.backward(
            self._cast(grad),
            self._cache["inputs"],
            self._cache["outputs"],
        )

    def get_config(self) -> dict:
        config = super().get_config()
        config.update(activation=self.activation.name)
        return config
