"""Snapshot sinks: periodic JSONL export of a metrics registry.

:class:`JsonlSink` appends one self-describing JSON line per snapshot
(timestamp + every counter/gauge/histogram value) to a file — the
no-infrastructure export path: a long replay calls ``maybe_write``
inside its loop and gets a time-series of the whole registry at the
configured cadence, greppable and ``json.loads``-able line by line.
``write`` forces a snapshot regardless of the interval (call it once at
the end of a run so short runs still leave a record).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry


class JsonlSink:
    """Append registry snapshots to a JSONL file.

    Parameters
    ----------
    path:
        Target file; parent directories are created on first write.
    interval_seconds:
        Minimum spacing between ``maybe_write`` snapshots (0 = every
        call).  ``write`` ignores the interval.
    """

    def __init__(self, path: str | Path, interval_seconds: float = 0.0) -> None:
        if interval_seconds < 0:
            raise ValueError(f"interval_seconds must be >= 0, got {interval_seconds}")
        self.path = Path(path)
        self.interval_seconds = float(interval_seconds)
        self._last_write: float | None = None
        self.snapshots_written = 0

    def write(self, registry: MetricsRegistry, timestamp: float | None = None) -> dict:
        """Force one snapshot line; returns the record written."""
        # Snapshot wall time is the payload, not hidden state.
        now = time.time() if timestamp is None else float(timestamp)  # reprolint: disable=RPR004
        record = {"unix_time": now, **registry.snapshot()}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
        self._last_write = time.monotonic()
        self.snapshots_written += 1
        return record

    def maybe_write(self, registry: MetricsRegistry) -> dict | None:
        """Snapshot if at least ``interval_seconds`` elapsed since the last.

        The first call always writes.  Returns the record, or ``None``
        when the interval has not elapsed yet.
        """
        now = time.monotonic()
        if self._last_write is not None and now - self._last_write < self.interval_seconds:
            return None
        return self.write(registry)

    def __repr__(self) -> str:
        return (
            f"JsonlSink({str(self.path)!r}, interval_seconds={self.interval_seconds}, "
            f"snapshots_written={self.snapshots_written})"
        )
