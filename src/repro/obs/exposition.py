"""Prometheus text exposition for a :class:`~repro.obs.MetricsRegistry`.

:func:`render_prometheus` produces the standard ``text/plain; version
0.0.4`` format — ``# HELP`` / ``# TYPE`` headers, one sample line per
series, histograms expanded into cumulative ``_bucket{le=...}`` series
plus ``_sum`` / ``_count`` — ready to serve from any HTTP handler or
dump next to a benchmark result.  The output is deterministic (metrics
sorted by name, labels pre-sorted by the registry) so golden tests can
compare it byte-for-byte.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry


def _fmt(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(pairs: tuple[tuple[str, str], ...]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def series_name(metric: Metric) -> str:
    """The exposition series identifier: ``name{label="value",...}``."""
    return f"{metric.name}{_label_str(metric.labels)}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every metric in ``registry`` as Prometheus text format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{series_name(metric)} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for i, bound in enumerate(metric.buckets):
                le = metric.labels + (("le", _fmt(float(bound))),)
                lines.append(f"{metric.name}_bucket{_label_str(le)} {int(cumulative[i])}")
            inf = metric.labels + (("le", "+Inf"),)
            lines.append(f"{metric.name}_bucket{_label_str(inf)} {int(cumulative[-1])}")
            lines.append(f"{metric.name}_sum{_label_str(metric.labels)} {_fmt(metric.sum)}")
            lines.append(f"{metric.name}_count{_label_str(metric.labels)} {int(metric.count)}")
        else:  # pragma: no cover - no other kinds are registered
            raise TypeError(f"cannot render metric kind {metric.kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")
