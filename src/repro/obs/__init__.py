"""repro.obs — opt-in runtime observability for the whole stack.

The streaming/federated engine runs unattended; this package is its
flight recorder: process-local :class:`Counter` / :class:`Gauge` /
:class:`Histogram` primitives (numpy-backed, allocation-free on the hot
path), a ``span(name)`` stage timer, Prometheus text exposition
(:func:`render_prometheus`) and JSONL snapshot export
(:class:`JsonlSink`).

Observability is **opt-in and zero-cost by default**: the module-level
registry starts as a :class:`NullRegistry` whose accessors return shared
no-op singletons, so every instrumented hot path pays only a handful of
attribute lookups until :func:`enable` is called (or the process starts
with ``REPRO_OBS=1`` in the environment).  Enabling never changes
pipeline *results* — flags, scores and mitigated outputs are bit-
identical with observability on or off (regression-tested in
``tests/obs``); only timings move, CI-gated at <= 5% block-mode
throughput overhead by ``benchmarks/bench_streaming.py obs_overhead``.

Instrumented out of the box:

* ``StreamingDetector.process_tick`` / ``process_block`` — per-stage
  spans (validate, scale/buffer, forward, threshold) plus counters for
  readings, flags, missing readings and no-anchor impute fallbacks;
* ``StreamReplayEngine.run`` — per-tick/per-block latency histograms, a
  mitigate span, readings/s gauge, churn and fallback-wiring counters;
* ``repro.stream.checkpoint`` — save/load durations and archive bytes;
* ``repro.nn.backend`` — kernel dispatch counts per resolved backend;
* ``Sequential.fit`` — per-epoch timings;
* ``FederatedSimulation`` — per-round client/barrier/aggregate timings.

Quickstart::

    from repro import obs
    from repro.obs import JsonlSink, render_prometheus

    registry = obs.enable()              # flip the global switch on
    ... run the pipeline ...
    print(render_prometheus(registry))   # scrape-ready text exposition
    JsonlSink("metrics.jsonl").write(registry)   # one-line JSON snapshot
"""

from __future__ import annotations

import os

from repro.obs.exposition import render_prometheus, series_name
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.sinks import JsonlSink

#: Environment variable that enables observability at import time.
ENV_VAR = "REPRO_OBS"

_NULL = NullRegistry()
_active: MetricsRegistry | NullRegistry = _NULL


def registry() -> MetricsRegistry | NullRegistry:
    """The active registry (the shared no-op when observability is off).

    Hot paths call this once per tick/block and branch on
    ``registry().enabled`` before computing anything metric-only.
    """
    return _active


def enabled() -> bool:
    """Whether a real (collecting) registry is active."""
    return _active.enabled


# The most recent collecting registry: enable() after disable() resumes
# it instead of silently dropping accumulated metrics.
_last: MetricsRegistry | None = None


def enable(target: MetricsRegistry | None = None) -> MetricsRegistry:
    """Switch observability on and return the collecting registry.

    Idempotent: with no argument, re-enabling keeps (or, after a
    :func:`disable`, resumes) the current collecting registry so metrics
    accumulate across calls; pass a fresh :class:`MetricsRegistry` to
    start from zero.
    """
    global _active, _last
    if target is None:
        if isinstance(_active, MetricsRegistry):
            return _active
        target = _last if _last is not None else MetricsRegistry()
    elif not isinstance(target, MetricsRegistry):
        raise TypeError(f"enable() expects a MetricsRegistry, got {type(target).__name__}")
    _active = target
    _last = target
    return target


def disable() -> None:
    """Switch observability off (instrumentation reverts to no-ops).

    The previously active registry is left intact — ``enable()`` again
    to resume accumulating into the same metrics.
    """
    global _active
    _active = _NULL


if os.environ.get(ENV_VAR, "").strip().lower() in {"1", "true", "yes", "on"}:
    enable()

__all__ = [
    "ENV_VAR",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullRegistry",
    "disable",
    "enable",
    "enabled",
    "registry",
    "render_prometheus",
    "series_name",
]
