"""Process-local metric primitives and the registry that owns them.

Three metric types, modelled on the Prometheus data model:

* :class:`Counter` — a monotonically increasing total (flags raised,
  readings ingested, checkpoints written).
* :class:`Gauge` — a value that goes up and down (readings/s of the
  last replay, bytes of the last checkpoint).
* :class:`Histogram` — fixed-bucket latency/size distribution.  The
  bucket counts live in one numpy ``int64`` array and a scalar
  ``observe`` is a ``searchsorted`` plus an in-place increment —
  allocation-free on the hot path.  ``observe_many`` folds a whole
  vector of observations in with one ``bincount``.

Metrics are owned by a :class:`MetricsRegistry`, keyed by
``(name, labels)`` with get-or-create semantics so instrumentation
sites never need module-level metric globals.  ``registry.span(name)``
returns a context manager that times its block into the histogram
``{name}_seconds``.

The disabled path is :class:`NullRegistry`: every accessor returns a
shared no-op singleton, so instrumented code pays a handful of
attribute lookups and nothing else when observability is off (see
:mod:`repro.obs` for the module-level switch).

Registries are process-local and not locked: the instrumented hot paths
all run on the driving thread, and CPython in-place float/int updates
are safe enough for the coarse counters used here.
"""

from __future__ import annotations

import re
import time

import numpy as np

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds): a 1/2.5/5 ladder per decade from
#: 10 µs to 10 s, wide enough for a per-tick span and a full federated
#: round alike.
_LADDER = tuple(
    base * scale for scale in (1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0) for base in (1.0, 2.5, 5.0)
)
DEFAULT_LATENCY_BUCKETS = _LADDER + (10.0,)

LabelPairs = tuple[tuple[str, str], ...]


def _canonical_labels(labels: dict[str, str] | None) -> LabelPairs:
    if not labels:
        return ()
    for key in labels:
        if not _LABEL_RE.match(key):
            raise ValueError(f"invalid label name {key!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Base class: identity (name + frozen labels) and help text."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labels = labels

    def value_dict(self) -> dict:
        """Plain-python snapshot of the current value (for JSONL sinks)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        label_str = "".join(f", {k}={v!r}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name!r}{label_str})"


class Counter(Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount

    def value_dict(self) -> dict:
        return {"value": self.value}


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def value_dict(self) -> dict:
        return {"value": self.value}


class Histogram(Metric):
    """Fixed-bucket distribution, numpy-backed.

    ``buckets`` are the finite upper bounds (ascending); an implicit
    ``+Inf`` bucket catches the overflow.  Counts are *per-bucket* in
    storage and cumulated only at exposition time, so ``observe`` is a
    single ``searchsorted`` + in-place increment: no allocation, no
    rescan.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelPairs = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels)
        bounds = np.asarray(buckets, dtype=np.float64)
        if bounds.ndim != 1 or bounds.size < 1:
            raise ValueError("histogram needs at least one finite bucket bound")
        if not np.all(np.diff(bounds) > 0):
            raise ValueError(f"bucket bounds must be strictly increasing, got {buckets}")
        if not np.isfinite(bounds).all():
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.buckets = bounds
        self._counts = np.zeros(bounds.size + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= bound`` lands in that bucket)."""
        self._counts[int(np.searchsorted(self.buckets, value, side="left"))] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: np.ndarray) -> None:
        """Record a vector of observations in one vectorized pass."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.buckets, values, side="left")
        self._counts += np.bincount(idx, minlength=self._counts.size)
        self.sum += float(values.sum())
        self.count += int(values.size)

    @property
    def bucket_counts(self) -> np.ndarray:
        """Per-bucket (non-cumulative) counts; last entry is the +Inf bucket."""
        return self._counts.copy()

    def cumulative_counts(self) -> np.ndarray:
        """Cumulative counts per bound (Prometheus ``le`` semantics)."""
        return np.cumsum(self._counts)

    def value_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                ("+Inf" if i == self.buckets.size else repr(float(self.buckets[i]))): int(c)
                for i, c in enumerate(self.cumulative_counts())
            },
        }


class _Span:
    """Times a ``with`` block into a histogram (created per entry)."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Owns metrics keyed by ``(name, labels)`` with get-or-create access.

    ``enabled`` is ``True`` — instrumentation sites branch on it before
    computing anything worth money (sums, label dicts).  The disabled
    counterpart is :class:`NullRegistry`.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelPairs], Metric] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> Metric:
        key = (name, _canonical_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is already registered as a {metric.kind}, "
                f"not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "", labels: dict[str, str] | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: dict[str, str] | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def span(self, name: str, help: str = "") -> _Span:
        """Context manager timing its block into ``{name}_seconds``."""
        return _Span(self.histogram(f"{name}_seconds", help=help))

    def collect(self) -> list[Metric]:
        """All registered metrics, sorted by (name, labels) for stable output."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> dict:
        """Plain-python dump of every metric, grouped by kind.

        Keys are the exposition series names (labels rendered inline) so
        one JSONL line is self-describing without a schema.
        """
        from repro.obs.exposition import series_name

        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self.collect():
            out[metric.kind + "s"][series_name(metric)] = metric.value_dict()
        return out

    def reset(self) -> None:
        """Drop every registered metric (fresh-start for tests/benches)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


# ---------------------------------------------------------------------------
# Disabled path: shared no-op singletons.
# ---------------------------------------------------------------------------


class _NullMetric:
    """Absorbs every metric mutation; one instance serves all names."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass


class _NullSpan:
    """No-op context manager; one instance serves every span site."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """The disabled registry: every accessor returns a shared no-op.

    Instrumented code holds one reference per call and pays only
    attribute lookups — no dict access, no string work, no numpy.
    """

    enabled = False

    def counter(self, name, help="", labels=None) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name, help="", labels=None) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name, help="", labels=None, buckets=None) -> _NullMetric:
        return _NULL_METRIC

    def span(self, name, help="") -> _NullSpan:
        return _NULL_SPAN

    def collect(self) -> list:
        return []

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRegistry()"
