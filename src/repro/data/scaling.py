"""Feature scaling.

The paper applies ``MinMaxScaler`` normalisation *independently to each
client's raw data* so every client trains on the [0, 1] range; metrics
are reported in original kWh units, so the scaler must round-trip
exactly.  A ``StandardScaler`` is included for ablations.
"""

from __future__ import annotations

import numpy as np


class MinMaxScaler:
    """Scale features to a target range (default [0, 1]), per column.

    Accepts 1-D or 2-D input; 1-D input is treated as a single feature
    column and returned with the same shape.  Constant columns map to the
    lower bound of the feature range (and inverse-transform back to the
    constant), matching scikit-learn's behaviour.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if not high > low:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = (float(low), float(high))
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        """Learn per-column min/max from ``values``."""
        array = self._as_2d(np.asarray(values, dtype=np.float64))
        if array.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        if not np.all(np.isfinite(array)):
            raise ValueError("cannot fit scaler on non-finite data")
        self.data_min_ = array.min(axis=0)
        self.data_max_ = array.max(axis=0)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Map into the feature range using the fitted min/max."""
        self._check_fitted()
        array = np.asarray(values, dtype=np.float64)
        was_1d = array.ndim == 1
        array2d = self._as_2d(array)
        span = self.data_max_ - self.data_min_
        safe_span = np.where(span == 0.0, 1.0, span)
        low, high = self.feature_range
        scaled = (array2d - self.data_min_) / safe_span * (high - low) + low
        scaled = np.where(span == 0.0, low, scaled)
        return scaled.ravel() if was_1d else scaled

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        """Map from the feature range back to original units."""
        self._check_fitted()
        array = np.asarray(values, dtype=np.float64)
        was_1d = array.ndim == 1
        array2d = self._as_2d(array)
        span = self.data_max_ - self.data_min_
        low, high = self.feature_range
        original = (array2d - low) / (high - low) * span + self.data_min_
        return original.ravel() if was_1d else original

    def _check_fitted(self) -> None:
        if self.data_min_ is None:
            raise RuntimeError("scaler must be fitted before use")

    @staticmethod
    def _as_2d(array: np.ndarray) -> np.ndarray:
        if array.ndim == 1:
            return array[:, None]
        if array.ndim == 2:
            return array
        raise ValueError(f"scaler expects 1-D or 2-D input, got shape {array.shape}")


class StandardScaler:
    """Zero-mean unit-variance scaling, per column (ablation alternative)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, values: np.ndarray) -> "StandardScaler":
        array = MinMaxScaler._as_2d(np.asarray(values, dtype=np.float64))
        if array.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.mean_ = array.mean(axis=0)
        std = array.std(axis=0)
        self.std_ = np.where(std == 0.0, 1.0, std)
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fitted before use")
        array = np.asarray(values, dtype=np.float64)
        was_1d = array.ndim == 1
        array2d = MinMaxScaler._as_2d(array)
        scaled = (array2d - self.mean_) / self.std_
        return scaled.ravel() if was_1d else scaled

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler must be fitted before use")
        array = np.asarray(values, dtype=np.float64)
        was_1d = array.ndim == 1
        array2d = MinMaxScaler._as_2d(array)
        original = array2d * self.std_ + self.mean_
        return original.ravel() if was_1d else original
