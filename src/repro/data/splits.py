"""Temporal train/test splitting.

The paper uses a *temporal* 80/20 split — the first 80% of each client's
series trains, the final 20% tests — never a shuffled split, because
shuffling would leak future values into training windows.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_1d, check_probability


def temporal_split(
    series: np.ndarray, train_fraction: float = 0.8
) -> tuple[np.ndarray, np.ndarray]:
    """Split a series into contiguous (train, test) segments.

    ``train_fraction`` of the points (floored) go to train; the rest to
    test.  Both segments are copies, so mutating one cannot corrupt the
    other (important when attacks are injected into a segment).
    """
    series = check_1d(series, "series")
    check_probability(train_fraction, "train_fraction")
    if len(series) < 2:
        raise ValueError(f"series too short to split (length {len(series)})")
    boundary = int(len(series) * train_fraction)
    if boundary == 0 or boundary == len(series):
        raise ValueError(
            f"train_fraction={train_fraction} leaves an empty split for "
            f"series of length {len(series)}"
        )
    return series[:boundary].copy(), series[boundary:].copy()


def split_boundary(n: int, train_fraction: float = 0.8) -> int:
    """Index of the first test point under :func:`temporal_split`."""
    check_probability(train_fraction, "train_fraction")
    return int(n * train_fraction)


def split_mask(n: int, train_fraction: float = 0.8) -> np.ndarray:
    """Boolean mask, ``True`` for train positions (prefix), else test."""
    boundary = split_boundary(n, train_fraction)
    mask = np.zeros(n, dtype=bool)
    mask[:boundary] = True
    return mask
