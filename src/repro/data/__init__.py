"""Data substrate: synthetic Shenzhen EV charging data and preprocessing.

The paper's dataset (Shenzhen, Sep 2022–Feb 2023, zones 102/105/108,
4,344 hourly points per zone) is not public; :mod:`repro.data.shenzhen`
synthesises series with the same structure (see DESIGN.md substitutions).
The rest of the package is the preprocessing the paper describes:
per-client MinMax scaling, temporal 80/20 splits and 24-hour windowing.
"""

from repro.data.datasets import ClientDataset, PreparedData, build_paper_clients
from repro.data.scaling import MinMaxScaler, StandardScaler
from repro.data.shenzhen import (
    PAPER_ZONE_CONFIGS,
    PAPER_ZONES,
    STUDY_TIMESTAMPS,
    ChargingSeries,
    ZoneConfig,
    generate_paper_dataset,
    generate_zone_series,
)
from repro.data.splits import split_boundary, split_mask, temporal_split
from repro.data.weather import WeatherSeries, generate_weather
from repro.data.windowing import (
    errors_per_point,
    make_autoencoder_windows,
    make_supervised,
    sliding_windows,
)

__all__ = [
    "ClientDataset",
    "PreparedData",
    "build_paper_clients",
    "MinMaxScaler",
    "StandardScaler",
    "PAPER_ZONE_CONFIGS",
    "PAPER_ZONES",
    "STUDY_TIMESTAMPS",
    "ChargingSeries",
    "ZoneConfig",
    "generate_paper_dataset",
    "generate_zone_series",
    "split_boundary",
    "split_mask",
    "temporal_split",
    "WeatherSeries",
    "generate_weather",
    "errors_per_point",
    "make_autoencoder_windows",
    "make_supervised",
    "sliding_windows",
]
