"""Synthetic meteorological covariates.

The paper's dataset "encompasses ... weather data from meteorological
observatories ... as contextual information, though not directly
incorporated into the forecasting models".  We mirror that: a weather
generator exists, the examples show how to join it with charging data,
but — exactly as in the paper — the forecasting models do not consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.profiles import HOURS_PER_DAY
from repro.utils.rng import SeedLike, as_generator


@dataclass
class WeatherSeries:
    """Hourly temperature (°C) and relative humidity (%) series."""

    temperature_c: np.ndarray
    humidity_pct: np.ndarray

    def __post_init__(self) -> None:
        self.temperature_c = np.asarray(self.temperature_c, dtype=np.float64)
        self.humidity_pct = np.asarray(self.humidity_pct, dtype=np.float64)
        if self.temperature_c.shape != self.humidity_pct.shape:
            raise ValueError("temperature and humidity must have equal shapes")
        if self.temperature_c.ndim != 1:
            raise ValueError("weather series must be 1-D")

    def __len__(self) -> int:
        return len(self.temperature_c)

    def as_features(self) -> np.ndarray:
        """Stack into an ``(n, 2)`` covariate matrix."""
        return np.stack([self.temperature_c, self.humidity_pct], axis=1)


def generate_weather(
    n_timestamps: int,
    seed: SeedLike = None,
    mean_temperature: float = 21.0,
    seasonal_swing: float = 8.0,
    diurnal_swing: float = 4.0,
) -> WeatherSeries:
    """Generate Shenzhen-like Sep→Feb weather.

    Temperature follows a cooling seasonal ramp (subtropical autumn into
    winter) plus a diurnal cycle and AR-ish noise; humidity is inversely
    correlated with the diurnal temperature cycle and clipped to [30, 100].
    """
    if n_timestamps < 1:
        raise ValueError(f"n_timestamps must be >= 1, got {n_timestamps}")
    rng = as_generator(seed)
    hours = np.arange(n_timestamps)
    phase = hours / max(n_timestamps - 1, 1)

    seasonal = -seasonal_swing * phase  # Sep (warm) → Feb (cool)
    diurnal = diurnal_swing * np.sin(2.0 * np.pi * ((hours % HOURS_PER_DAY) - 9) / 24.0)
    temperature = mean_temperature + seasonal + diurnal + rng.normal(0.0, 1.0, n_timestamps)

    humidity = 70.0 - 2.0 * diurnal + 10.0 * np.sin(2.0 * np.pi * phase) + rng.normal(
        0.0, 4.0, n_timestamps
    )
    return WeatherSeries(temperature, np.clip(humidity, 30.0, 100.0))
