"""Structural components of synthetic EV charging demand.

The real Shenzhen dataset is proprietary; the generator composes demand
from interpretable pieces so the evaluation exercises the same phenomena
the paper relies on:

* a *daily* double-peak profile (morning commute + evening charge-up),
* *weekly* modulation (weekday vs. weekend behaviour),
* a slow *seasonal* drift across the Sep–Feb study window,
* autocorrelated (AR(1)) demand noise, and
* occasional *natural demand spikes* — crucial for zone 108, whose
  attack-like organic spikes depress detection recall in the paper.

All components are vectorised over an hour-index array and deterministic
given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 168


def daily_profile(
    hours: np.ndarray,
    morning_peak: float,
    evening_peak: float,
    morning_hour: float = 8.0,
    evening_hour: float = 19.0,
    width: float = 2.5,
) -> np.ndarray:
    """Double-Gaussian daily shape evaluated at absolute hour indices.

    ``hours`` may span many days; the profile depends only on the hour of
    day.  Peaks are Gaussian bumps centred at ``morning_hour`` and
    ``evening_hour`` with common ``width`` (in hours).
    """
    hour_of_day = np.asarray(hours) % HOURS_PER_DAY
    morning = morning_peak * _wrapped_gaussian(hour_of_day, morning_hour, width)
    evening = evening_peak * _wrapped_gaussian(hour_of_day, evening_hour, width)
    return morning + evening


def weekly_modulation(hours: np.ndarray, weekend_factor: float) -> np.ndarray:
    """Multiplicative weekday/weekend factor.

    Days 5 and 6 of each week (the weekend under a Monday-start epoch)
    are scaled by ``weekend_factor``; weekdays by 1.0.
    """
    day_of_week = (np.asarray(hours) // HOURS_PER_DAY) % 7
    return np.where(day_of_week >= 5, weekend_factor, 1.0)


def seasonal_trend(hours: np.ndarray, total_hours: int, amplitude: float) -> np.ndarray:
    """Slow drift over the study window (Sep→Feb cooling season).

    A half-cosine that rises by ``amplitude`` over the full window,
    reflecting EV adoption growth plus winter charging demand.
    """
    phase = np.asarray(hours) / max(total_hours - 1, 1)
    return amplitude * 0.5 * (1.0 - np.cos(np.pi * phase))


def ar1_noise(
    n: int,
    sigma: float,
    phi: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Stationary AR(1) noise: ``x_t = phi * x_{t-1} + eps_t``.

    Innovations are scaled so the marginal standard deviation is
    ``sigma`` regardless of ``phi``.
    """
    if not 0.0 <= phi < 1.0:
        raise ValueError(f"phi must be in [0, 1), got {phi}")
    innovations = rng.normal(0.0, sigma * np.sqrt(1.0 - phi * phi), size=n)
    noise = np.empty(n)
    previous = rng.normal(0.0, sigma)
    for t in range(n):
        previous = phi * previous + innovations[t]
        noise[t] = previous
    return noise


def natural_spikes(
    n: int,
    rate_per_day: float,
    scale: float,
    duration_hours: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Additive organic demand spikes (events, fleet arrivals, holidays).

    Spike onsets follow a Bernoulli-per-hour process with the given daily
    rate; each spike lasts ``duration_hours`` with linearly decaying
    magnitude drawn from an exponential with mean ``scale``.
    """
    spikes = np.zeros(n)
    hourly_probability = rate_per_day / HOURS_PER_DAY
    onsets = np.flatnonzero(rng.random(n) < hourly_probability)
    for onset in onsets:
        magnitude = rng.exponential(scale)
        for offset in range(duration_hours):
            index = onset + offset
            if index >= n:
                break
            decay = 1.0 - offset / duration_hours
            spikes[index] += magnitude * decay
    return spikes


def _wrapped_gaussian(hour_of_day: np.ndarray, centre: float, width: float) -> np.ndarray:
    """Gaussian bump on the 24 h circle (so 23:00 and 0:00 are close)."""
    delta = np.abs(hour_of_day - centre)
    delta = np.minimum(delta, HOURS_PER_DAY - delta)
    return np.exp(-0.5 * (delta / width) ** 2)
