"""Client dataset containers shared by every experiment scenario.

A :class:`ClientDataset` is one federated participant's 1-D charging
series (clean, attacked, or filtered — the container doesn't care); its
:meth:`ClientDataset.prepare` method applies the paper's preprocessing
(per-client MinMax scaling fitted on the train segment, temporal 80/20
split, 24-step supervised windowing) and yields a :class:`PreparedData`
with everything the models consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.scaling import MinMaxScaler
from repro.data.splits import temporal_split
from repro.data.windowing import make_supervised
from repro.utils.validation import check_1d


@dataclass
class PreparedData:
    """Model-ready tensors for one client and one scenario.

    ``x_*`` are ``(n, sequence_length, 1)`` scaled windows; ``y_*`` are
    ``(n, 1)`` scaled targets.  ``scaler`` inverts predictions back to
    kWh, and ``test_targets_kwh`` keeps the unscaled ground truth used by
    the regression metrics (the paper reports MAE/RMSE in original units).
    """

    client_name: str
    sequence_length: int
    scaler: MinMaxScaler
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    train_series: np.ndarray
    test_series: np.ndarray

    @property
    def test_targets_kwh(self) -> np.ndarray:
        """Unscaled test targets, shape ``(n,)``."""
        return self.scaler.inverse_transform(self.y_test.ravel())

    def inverse_predictions(self, scaled_predictions: np.ndarray) -> np.ndarray:
        """Map scaled model outputs back to kWh, shape ``(n,)``."""
        return self.scaler.inverse_transform(np.asarray(scaled_predictions).ravel())

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_test(self) -> int:
        return len(self.x_test)


@dataclass
class ClientDataset:
    """One federated client: a named zone and its charging series."""

    name: str
    zone_id: str
    series: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.series = check_1d(self.series, "series")

    def __len__(self) -> int:
        return len(self.series)

    def with_series(self, series: np.ndarray) -> "ClientDataset":
        """Copy of this client carrying a different series variant."""
        return ClientDataset(self.name, self.zone_id, np.asarray(series, dtype=np.float64))

    def prepare(
        self,
        sequence_length: int = 24,
        train_fraction: float = 0.8,
        feature_range: tuple[float, float] = (0.0, 1.0),
    ) -> PreparedData:
        """Apply the paper's preprocessing pipeline.

        Order matters and follows the paper: temporal split first, then a
        MinMaxScaler fitted **on the training segment only** (fitting on
        the full series would leak test-range information), then
        windowing each segment.  The last ``sequence_length`` training
        points seed the test windows so the first test predictions have
        full history (standard practice; keeps test target count at
        ``len(test)`` - consistent across scenarios).
        """
        train_series, test_series = temporal_split(self.series, train_fraction)
        scaler = MinMaxScaler(feature_range)
        scaled_train = scaler.fit_transform(train_series)
        scaled_test = scaler.transform(test_series)

        x_train, y_train = make_supervised(scaled_train, sequence_length)
        # Prefix the test segment with the training tail so every test
        # point becomes a prediction target.
        stitched = np.concatenate([scaled_train[-sequence_length:], scaled_test])
        x_test, y_test = make_supervised(stitched, sequence_length)

        return PreparedData(
            client_name=self.name,
            sequence_length=sequence_length,
            scaler=scaler,
            x_train=x_train,
            y_train=y_train,
            x_test=x_test,
            y_test=y_test,
            train_series=train_series,
            test_series=test_series,
        )


def build_paper_clients(series_by_zone: dict[str, np.ndarray | object]) -> list[ClientDataset]:
    """Wrap per-zone series into the paper's Client 1/2/3 naming.

    Accepts raw arrays or :class:`~repro.data.shenzhen.ChargingSeries`
    values; clients are numbered in the dict's iteration order, matching
    the paper's zone order (102, 105, 108).
    """
    clients = []
    for index, (zone_id, series) in enumerate(series_by_zone.items(), start=1):
        values = getattr(series, "volume_kwh", series)
        clients.append(ClientDataset(f"Client {index}", zone_id, np.asarray(values)))
    return clients
