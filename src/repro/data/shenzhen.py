"""Synthetic Shenzhen-like EV charging dataset.

The paper studies three traffic zones of Shenzhen's 331-zone dataset —
'102', '105' and '108' (Clients 1–3) — at 1-hour resolution over
September 2022 to February 2023 (4,344 timestamps per zone).  The raw
dataset is not public, so this module synthesises per-zone hourly
charging volume (kWh) with the structure the evaluation depends on; see
:mod:`repro.data.profiles` for the components and DESIGN.md for the
substitution rationale.

Zone personalities (chosen to reproduce the paper's observed spatial
heterogeneity):

* **zone 102** — commuter-heavy business district: strong morning and
  evening peaks, quiet weekends.
* **zone 105** — residential: dominant evening peak, mildly busier
  weekends, lower noise.
* **zone 108** — mixed logistics/commercial: flatter profile but frequent
  organic demand spikes that *resemble attack signatures* (the paper
  observes zone 108 has the lowest detection recall, Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import profiles
from repro.utils.rng import SeedLike, as_generator, spawn

#: Number of hourly timestamps in the study window (Sep 2022 – Feb 2023).
STUDY_TIMESTAMPS = 4344

#: Zones the paper selects, in client order (Client 1, 2, 3).
PAPER_ZONES = ("102", "105", "108")


@dataclass(frozen=True)
class ZoneConfig:
    """Generative parameters for one traffic zone.

    Attributes mirror the components in :mod:`repro.data.profiles`;
    magnitudes are in kWh of hourly charging volume.
    """

    zone_id: str
    base_demand: float
    morning_peak: float
    evening_peak: float
    morning_hour: float = 8.0
    evening_hour: float = 19.0
    peak_width: float = 2.5
    weekend_factor: float = 0.8
    seasonal_amplitude: float = 2.5
    noise_sigma: float = 2.0
    noise_phi: float = 0.6
    spike_rate_per_day: float = 0.05
    spike_scale: float = 8.0
    spike_duration_hours: int = 3

    def __post_init__(self) -> None:
        if self.base_demand < 0:
            raise ValueError(f"base_demand must be >= 0, got {self.base_demand}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")
        if self.spike_rate_per_day < 0:
            raise ValueError(
                f"spike_rate_per_day must be >= 0, got {self.spike_rate_per_day}"
            )


#: Default zone configurations reproducing the paper's three clients.
PAPER_ZONE_CONFIGS: dict[str, ZoneConfig] = {
    "102": ZoneConfig(
        zone_id="102",
        base_demand=18.0,
        morning_peak=16.0,
        evening_peak=20.0,
        morning_hour=8.0,
        evening_hour=19.0,
        peak_width=2.0,
        weekend_factor=0.6,
        seasonal_amplitude=3.0,
        noise_sigma=2.4,
        noise_phi=0.45,
        spike_rate_per_day=0.04,
        spike_scale=7.0,
    ),
    "105": ZoneConfig(
        zone_id="105",
        base_demand=55.0,
        morning_peak=8.0,
        evening_peak=42.0,
        morning_hour=10.0,
        evening_hour=21.0,
        peak_width=3.0,
        weekend_factor=1.3,
        seasonal_amplitude=2.0,
        noise_sigma=2.5,
        noise_phi=0.5,
        spike_rate_per_day=0.03,
        spike_scale=6.0,
    ),
    "108": ZoneConfig(
        zone_id="108",
        base_demand=20.0,
        morning_peak=10.0,
        evening_peak=12.0,
        morning_hour=6.0,
        evening_hour=16.0,
        peak_width=4.0,
        weekend_factor=0.95,
        seasonal_amplitude=2.5,
        noise_sigma=3.0,
        noise_phi=0.65,
        # Frequent organic spikes that mimic attack signatures.
        spike_rate_per_day=0.6,
        spike_scale=16.0,
        spike_duration_hours=4,
    ),
}


@dataclass
class ChargingSeries:
    """One zone's hourly charging-volume series with hour indices.

    ``volume_kwh`` is non-negative; ``hours`` is the absolute hour index
    from the start of the study window (0 .. n-1).
    """

    zone_id: str
    volume_kwh: np.ndarray
    hours: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.volume_kwh = np.asarray(self.volume_kwh, dtype=np.float64)
        if self.volume_kwh.ndim != 1:
            raise ValueError(
                f"volume_kwh must be 1-D, got shape {self.volume_kwh.shape}"
            )
        if self.hours is None:
            self.hours = np.arange(len(self.volume_kwh))
        else:
            self.hours = np.asarray(self.hours)
            if self.hours.shape != self.volume_kwh.shape:
                raise ValueError("hours and volume_kwh must have equal shapes")

    def __len__(self) -> int:
        return len(self.volume_kwh)


def generate_zone_series(
    config: ZoneConfig,
    n_timestamps: int = STUDY_TIMESTAMPS,
    seed: SeedLike = None,
) -> ChargingSeries:
    """Synthesize one zone's hourly charging volume.

    Composition: base + daily profile × weekly modulation + seasonal
    trend + AR(1) noise + organic spikes, clipped at zero (volume cannot
    be negative).
    """
    if n_timestamps < 1:
        raise ValueError(f"n_timestamps must be >= 1, got {n_timestamps}")
    rng = as_generator(seed)
    hours = np.arange(n_timestamps)

    daily = profiles.daily_profile(
        hours,
        morning_peak=config.morning_peak,
        evening_peak=config.evening_peak,
        morning_hour=config.morning_hour,
        evening_hour=config.evening_hour,
        width=config.peak_width,
    )
    weekly = profiles.weekly_modulation(hours, config.weekend_factor)
    seasonal = profiles.seasonal_trend(hours, n_timestamps, config.seasonal_amplitude)
    noise = profiles.ar1_noise(
        n_timestamps, config.noise_sigma, config.noise_phi, spawn(rng, "noise")
    )
    spikes = profiles.natural_spikes(
        n_timestamps,
        config.spike_rate_per_day,
        config.spike_scale,
        config.spike_duration_hours,
        spawn(rng, "spikes"),
    )

    volume = config.base_demand + daily * weekly + seasonal + noise + spikes
    return ChargingSeries(config.zone_id, np.maximum(volume, 0.0), hours)


def generate_paper_dataset(
    seed: SeedLike = 0,
    n_timestamps: int = STUDY_TIMESTAMPS,
    zones: tuple[str, ...] = PAPER_ZONES,
) -> dict[str, ChargingSeries]:
    """Generate the three-client dataset used throughout the experiments.

    Each zone gets an independent child RNG derived from ``seed``, so a
    single integer reproduces the entire multi-client dataset.
    """
    dataset = {}
    for zone_id in zones:
        if zone_id not in PAPER_ZONE_CONFIGS:
            known = ", ".join(sorted(PAPER_ZONE_CONFIGS))
            raise ValueError(f"unknown zone {zone_id!r}; known: {known}")
        dataset[zone_id] = generate_zone_series(
            PAPER_ZONE_CONFIGS[zone_id],
            n_timestamps=n_timestamps,
            seed=spawn(seed, f"zone-{zone_id}"),
        )
    return dataset
