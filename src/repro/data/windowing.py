"""Sliding-window construction for LSTM inputs.

The paper uses ``SEQUENCE_LENGTH = 24`` (one day of hourly history) both
for the forecaster (windows → next value) and the autoencoder (windows →
themselves).  :func:`errors_per_point` folds per-window reconstruction
errors back to per-timestep scores by reducing over the overlapping
windows covering each point (``"min"`` by default; ``"median"`` and
``"mean"`` are available) — the detector needs point-level decisions.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.utils.validation import check_1d


def make_supervised(series: np.ndarray, sequence_length: int) -> tuple[np.ndarray, np.ndarray]:
    """Build (windows, next-value) pairs for next-step forecasting.

    Returns ``x`` of shape ``(n, sequence_length, 1)`` and ``y`` of shape
    ``(n, 1)`` where ``n = len(series) - sequence_length`` and
    ``y[i] = series[i + sequence_length]``.
    """
    series = check_1d(series, "series")
    _check_length(series, sequence_length, extra=1)
    windows = sliding_windows(series, sequence_length)[:-1]
    targets = series[sequence_length:][:, None]
    return windows[:, :, None], targets


def make_autoencoder_windows(
    series: np.ndarray, sequence_length: int, stride: int = 1
) -> np.ndarray:
    """Build overlapping windows ``(n, sequence_length, 1)`` for the AE.

    The autoencoder reconstructs its own input, so no targets are
    returned; callers use the windows as both input and target.
    """
    series = check_1d(series, "series")
    _check_length(series, sequence_length)
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    windows = sliding_windows(series, sequence_length)[::stride]
    return windows[:, :, None]


def sliding_windows(series: np.ndarray, sequence_length: int) -> np.ndarray:
    """All contiguous windows of ``sequence_length``, shape ``(n, L)``."""
    series = check_1d(series, "series")
    _check_length(series, sequence_length)
    view = np.lib.stride_tricks.sliding_window_view(series, sequence_length)
    return view.copy()


def errors_per_point(
    window_errors: np.ndarray,
    series_length: int,
    sequence_length: int,
    stride: int = 1,
    reduction: str = "min",
) -> np.ndarray:
    """Fold per-window-per-step errors back onto the original timeline.

    ``window_errors`` has shape ``(n_windows, sequence_length)`` — e.g.
    squared reconstruction errors per timestep of each window.  Each
    series point is covered by up to ``sequence_length`` overlapping
    windows; the returned per-point score reduces over its covering
    windows (default "min").  Points not covered by any window (none, for stride 1)
    receive NaN.

    ``reduction`` matters for localisation: a large spike corrupts the
    reconstruction of *every* window containing it, which under
    ``"mean"`` smears high scores onto up to ``sequence_length - 1``
    normal neighbours (false positives around each burst).  ``"median"``
    requires a majority of covering windows to agree, and ``"min"``
    (default) flags a point only when no covering window can explain it —
    the sharpest localisation and the most robust to smearing.
    """
    window_errors = np.asarray(window_errors, dtype=np.float64)
    if window_errors.ndim != 2 or window_errors.shape[1] != sequence_length:
        raise ValueError(
            f"window_errors must be (n_windows, {sequence_length}), "
            f"got {window_errors.shape}"
        )
    if reduction not in ("mean", "median", "min"):
        raise ValueError(f"reduction must be mean/median/min, got {reduction!r}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    n_windows = window_errors.shape[0]
    if n_windows and (n_windows - 1) * stride + sequence_length > series_length:
        raise ValueError(
            "window extends past the series end; check series_length/stride"
        )
    if n_windows == 0:
        return np.full(series_length, np.nan)
    # Scatter every (window, offset) contribution into a dense
    # (series_length, max_coverage) table, one column per covering
    # window, then reduce along the coverage axis.  The slot of entry
    # (w, o) at point p = w*stride + o is w's rank among the windows
    # covering p, i.e. w - min{w' : w'*stride + sequence_length > p}.
    offsets = np.arange(sequence_length)
    positions = (np.arange(n_windows)[:, None] * stride + offsets[None, :]).ravel()
    window_of = np.repeat(np.arange(n_windows), sequence_length)
    first_covering = np.maximum(
        -((-(positions - sequence_length + 1)) // stride), 0
    )
    slots = window_of - first_covering
    dense = np.full((series_length, int(slots.max()) + 1), np.nan)
    dense[positions, slots] = window_errors.ravel()
    reducer = {"mean": np.nanmean, "median": np.nanmedian, "min": np.nanmin}[reduction]
    with warnings.catch_warnings():
        # Uncovered points (all-NaN rows) reduce to NaN by design.
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return reducer(dense, axis=1)


def _check_length(series: np.ndarray, sequence_length: int, extra: int = 0) -> None:
    if sequence_length < 1:
        raise ValueError(f"sequence_length must be >= 1, got {sequence_length}")
    minimum = sequence_length + extra
    if len(series) < minimum:
        raise ValueError(
            f"series of length {len(series)} is too short for "
            f"sequence_length={sequence_length} (needs >= {minimum})"
        )
