"""Wall-clock measurement helpers.

The paper reports training times (Table I); we measure our own wall-clock
with :class:`Timer` and accumulate per-phase durations with
:class:`Stopwatch` so the federated simulator can also report a
*simulated-parallel* time (max across clients per round).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class Stopwatch:
    """Accumulates named durations across repeated phases.

    Used by the federated simulator to record per-client, per-round
    training durations, from which both sequential total and
    simulated-parallel wall-clock are derived.
    """

    def __init__(self) -> None:
        self._durations: dict[str, list[float]] = {}

    def record(self, name: str, seconds: float) -> None:
        """Append a duration (seconds) under ``name``."""
        if seconds < 0:
            raise ValueError(f"duration must be non-negative, got {seconds}")
        self._durations.setdefault(name, []).append(seconds)

    def measure(self, name: str) -> "_StopwatchPhase":
        """Context manager recording the phase duration under ``name``."""
        return _StopwatchPhase(self, name)

    def total(self, name: str) -> float:
        """Sum of all durations recorded under ``name`` (0.0 if none)."""
        return float(sum(self._durations.get(name, [])))

    def series(self, name: str) -> list[float]:
        """All durations recorded under ``name`` in order."""
        return list(self._durations.get(name, []))

    def names(self) -> list[str]:
        """All recorded phase names, in first-recorded order."""
        return list(self._durations)

    def grand_total(self) -> float:
        """Sum over every recorded duration."""
        return float(sum(sum(v) for v in self._durations.values()))


class _StopwatchPhase:
    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StopwatchPhase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stopwatch.record(self._name, time.perf_counter() - self._start)
