"""Shared utilities: deterministic RNG management, timing, validation.

Every stochastic component in :mod:`repro` accepts either an integer seed
or a :class:`numpy.random.Generator`; the helpers here normalise between
the two and fan a master seed out to independent child streams so that
experiments are reproducible end to end.
"""

from repro.utils.rng import as_generator, spawn, spawn_many
from repro.utils.timing import Stopwatch, Timer
from repro.utils.validation import (
    check_1d,
    check_3d,
    check_finite,
    check_positive,
    check_probability,
    check_same_length,
)

__all__ = [
    "as_generator",
    "spawn",
    "spawn_many",
    "Stopwatch",
    "Timer",
    "check_1d",
    "check_3d",
    "check_finite",
    "check_positive",
    "check_probability",
    "check_same_length",
]
