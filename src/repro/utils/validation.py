"""Input-validation helpers shared across the library.

All validators raise ``ValueError`` with a message naming the offending
argument; they return the (possibly converted) array so call sites can
validate and normalise in one expression.
"""

from __future__ import annotations

import numpy as np


def check_1d(values: np.ndarray, name: str = "values") -> np.ndarray:
    """Ensure ``values`` is a 1-D float array; returns a float64 copy/view."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {array.shape}")
    return array


def check_3d(values: np.ndarray, name: str = "values") -> np.ndarray:
    """Ensure ``values`` is a 3-D (batch, time, features) float array."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 3:
        raise ValueError(
            f"{name} must be 3-D (batch, time, features), got shape {array.shape}"
        )
    return array


def check_finite(values: np.ndarray, name: str = "values") -> np.ndarray:
    """Ensure all entries are finite (no NaN/inf)."""
    array = np.asarray(values)
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or infinite entries")
    return array


def check_positive(value: float, name: str = "value") -> float:
    """Ensure a scalar is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return value


def check_probability(value: float, name: str = "value") -> float:
    """Ensure a scalar lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_same_length(a: np.ndarray, b: np.ndarray, names: str = "arrays") -> None:
    """Ensure two arrays have equal first-dimension length."""
    if len(a) != len(b):
        raise ValueError(f"{names} must have the same length, got {len(a)} and {len(b)}")
