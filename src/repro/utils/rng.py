"""Deterministic random-number management.

The reproduction is seed-stable: a single master seed drives every source
of randomness (data synthesis, attack scheduling, weight initialisation,
mini-batch shuffling, dropout masks).  To keep the streams independent we
never share a :class:`numpy.random.Generator` between components; instead
we *spawn* child generators using :class:`numpy.random.SeedSequence`.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an ``int`` seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged so
    that callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, key: str) -> np.random.Generator:
    """Derive an independent child generator for component ``key``.

    The same ``(seed, key)`` pair always yields the same stream, and
    different keys yield statistically independent streams.  ``key`` is
    hashed into the spawn entropy, so call sites can use readable names
    ("attacks", "client-102/init", ...).
    """
    if isinstance(seed, np.random.Generator):
        # Derive from the generator's own bit stream; deterministic given
        # the generator state.
        child_seed = int(seed.integers(0, 2**63 - 1))
        entropy = [child_seed, _key_entropy(key)]
    else:
        base = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        entropy = list(base.entropy if isinstance(base.entropy, tuple) else [base.entropy or 0])
        entropy.append(_key_entropy(key))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_many(seed: SeedLike, keys: list[str]) -> dict[str, np.random.Generator]:
    """Spawn one independent child generator per key."""
    return {key: spawn(seed, key) for key in keys}


def _key_entropy(key: str) -> int:
    """Stable 63-bit entropy derived from a string key.

    ``hash()`` is salted per process, so we use a small FNV-1a instead to
    stay deterministic across runs.
    """
    value = 0xCBF29CE484222325
    for byte in key.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) % (1 << 64)
    return value % (1 << 63)
