"""Substrate microbenches: LSTM/Dense throughput and training-step cost.

These are conventional pytest-benchmark measurements (multiple rounds)
quantifying the numpy substrate the entire reproduction runs on.
"""

import numpy as np
import pytest

from repro.anomaly.autoencoder import AutoencoderConfig, build_autoencoder
from repro.nn import LSTM, Adam, Dense, MeanSquaredError, Sequential


@pytest.fixture(scope="module")
def forecaster_batch():
    rng = np.random.default_rng(0)
    model = Sequential([LSTM(50), Dense(10, activation="relu"), Dense(1)])
    model.compile(Adam(0.001), "mse")
    x = rng.normal(size=(32, 24, 1))
    y = rng.normal(size=(32, 1))
    model.forward(x)  # build
    return model, x, y


def test_lstm_forward(benchmark, forecaster_batch):
    model, x, _ = forecaster_batch
    benchmark(model.forward, x)


def test_train_on_batch(benchmark, forecaster_batch):
    model, x, y = forecaster_batch
    benchmark(model.train_on_batch, x, y)


def test_dense_forward(benchmark):
    rng = np.random.default_rng(1)
    layer = Dense(64)
    layer.build((128,), rng)
    x = rng.normal(size=(256, 128))
    benchmark(layer.forward, x)


def test_autoencoder_forward(benchmark):
    config = AutoencoderConfig(sequence_length=24)
    model = build_autoencoder(config, seed=2)
    x = np.random.default_rng(3).random((32, 24, 1))
    benchmark(model.forward, x)


def test_backward_pass(benchmark, forecaster_batch):
    model, x, y = forecaster_batch
    loss = MeanSquaredError()

    def full_step():
        predictions = model.forward(x, training=True)
        model.zero_grads()
        model.backward(loss.gradient(y, predictions))

    benchmark(full_step)
