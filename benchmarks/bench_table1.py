"""Bench: regenerate Table I (Client 1, four scenarios).

Prints the measured MAE/RMSE/R²/time rows next to the paper's values and
asserts the paper's qualitative orderings.
"""

from repro.experiments.table1 import render_table1, table1_rows


def test_table1(experiment_result, benchmark):
    rows = benchmark.pedantic(
        table1_rows, args=(experiment_result,), rounds=1, iterations=1
    )
    print()
    print(render_table1(experiment_result))

    by_key = {(r.scenario, r.architecture): r for r in rows}
    clean = by_key[("Clean Data", "Federated")]
    attacked = by_key[("Attacked Data", "Federated")]
    filtered = by_key[("Filtered Data", "Federated")]
    centralized = by_key[("Filtered Data", "Centralized")]

    # Paper shape: attacks degrade, filtering recovers, federated beats
    # centralized on identical filtered data, federated trains faster.
    assert clean.r2 > attacked.r2
    assert filtered.r2 > attacked.r2
    assert attacked.rmse > clean.rmse
    assert filtered.r2 > centralized.r2
    assert filtered.mae < centralized.mae
    assert filtered.time_seconds < centralized.time_seconds
