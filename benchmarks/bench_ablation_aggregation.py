"""Ablation: aggregation rules under a Byzantine client.

The paper uses plain FedAvg; in its adversarial setting a poisoned
client could corrupt the global model.  This bench aggregates honest
weight sets plus one scaled (poisoned) update under each rule and
reports the distance of the aggregate from the honest mean — the
robustness argument for median/trimmed-mean/Krum.
"""

import numpy as np
import pytest

from repro.federated.aggregation import get as get_aggregator
from repro.experiments.reporting import render_table
from repro.forecasting.models import build_forecaster

RULES = ("fedavg", "median", "trimmed_mean", "krum")


@pytest.fixture(scope="module")
def weight_sets():
    rng = np.random.default_rng(0)
    honest_count = 4
    base = build_forecaster(lstm_units=16, dense_units=8)
    base.build((24, 1), seed=1)
    template = base.get_weights()
    honest = [
        [w + rng.normal(0, 0.01, size=w.shape) for w in template]
        for _ in range(honest_count)
    ]
    poisoned = [w * 50.0 for w in template]
    honest_mean = [
        np.mean([weights[i] for weights in honest], axis=0)
        for i in range(len(template))
    ]
    return honest, poisoned, honest_mean


def distance_to_honest_mean(aggregated, honest_mean):
    return float(
        np.sqrt(
            sum(np.sum((a - h) ** 2) for a, h in zip(aggregated, honest_mean, strict=True))
        )
    )


def test_aggregation_robustness(weight_sets, benchmark):
    honest, poisoned, honest_mean = weight_sets

    def run_all():
        results = {}
        for rule in RULES:
            aggregator = get_aggregator(rule)
            aggregated = aggregator.aggregate(honest + [poisoned])
            results[rule] = distance_to_honest_mean(aggregated, honest_mean)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["rule", "L2 distance to honest mean"],
            [[rule, dist] for rule, dist in sorted(results.items(), key=lambda kv: kv[1])],
            title="Ablation — aggregation under one Byzantine client (4 honest + 1 poisoned)",
        )
    )
    # Robust rules must shrug the poisoned update off; FedAvg must not.
    for robust in ("median", "trimmed_mean", "krum"):
        assert results[robust] < 0.1 * results["fedavg"], robust
