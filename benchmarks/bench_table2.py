"""Bench: regenerate Table II (per-client detection metrics)."""

from repro.experiments.table2 import render_table2, table2_rows


def test_table2(experiment_result, benchmark):
    rows = benchmark.pedantic(
        table2_rows, args=(experiment_result,), rounds=1, iterations=1
    )
    print()
    print(render_table2(experiment_result))

    by_zone = {r.zone_id: r for r in rows}
    overall = experiment_result.data_stage.overall_detection_metrics()

    # Paper shape: precision-focused detection with low FPR, and zone
    # 108's organic spikes depress its recall below the other zones.
    assert overall.precision > overall.recall
    assert overall.false_positive_rate < 0.05
    assert by_zone["108"].recall == min(r.recall for r in rows)
    for row in rows:
        assert row.precision > 0.5
