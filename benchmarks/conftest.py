"""Benchmark fixtures.

Each bench regenerates one table or figure of the paper and prints the
same rows the paper reports, side by side with the paper's values.

Profile selection: ``REPRO_PROFILE=fast`` (default here) runs the
shape-preserving reduced configuration in a few minutes;
``REPRO_PROFILE=paper`` runs the full-scale configuration (tens of
minutes).  All benches share one memoised experiment execution per
process, so the suite costs one experiment run plus the ablations.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import PROFILE_ENV_VAR, ExperimentConfig
from repro.experiments.scenarios import get_or_run

#: Benchmarks default to the fast profile unless the caller overrides.
os.environ.setdefault(PROFILE_ENV_VAR, "fast")


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session")
def experiment_result(experiment_config):
    """The shared four-scenario experiment run (memoised per process)."""
    return get_or_run(experiment_config)
