"""Ablation: mitigation strategy — linear interpolation vs. advanced imputers.

The paper calls its linear interpolation "a basic mitigation approach"
and lists advanced reconstruction as future work.  Given ground-truth
attack labels, this bench repairs the same attacked series with every
imputer and reports how close each repair comes to the true clean data
(repair MAE at attacked points).
"""

import numpy as np
import pytest

from repro.anomaly.mitigation import get as get_imputer
from repro.anomaly.mitigation import merge_small_gaps
from repro.attacks import AttackScenario, DDoSVolumeAttack
from repro.data import build_paper_clients, generate_paper_dataset
from repro.experiments.reporting import render_table

IMPUTERS = ("linear", "seasonal", "spline", "moving_average")


@pytest.fixture(scope="module")
def attacked_clients():
    clients = build_paper_clients(generate_paper_dataset(seed=9, n_timestamps=2000))
    outcomes = AttackScenario([DDoSVolumeAttack()], name="mitigation").apply(
        clients, seed=10
    )
    return clients, outcomes


def repair_error(imputer_name, clients, outcomes):
    errors = []
    for client in clients:
        outcome = outcomes[client.name]
        mask = merge_small_gaps(outcome.labels, max_gap=2)
        repaired = get_imputer(imputer_name).impute(outcome.client.series, mask)
        errors.append(np.abs(repaired[mask] - client.series[mask]).mean())
    return float(np.mean(errors))


def test_mitigation_strategies(attacked_clients, benchmark):
    clients, outcomes = attacked_clients
    results = benchmark.pedantic(
        lambda: {name: repair_error(name, clients, outcomes) for name in IMPUTERS},
        rounds=1,
        iterations=1,
    )
    attacked_error = float(
        np.mean(
            [
                np.abs(
                    outcomes[c.name].client.series[outcomes[c.name].labels]
                    - c.series[outcomes[c.name].labels]
                ).mean()
                for c in clients
            ]
        )
    )
    print()
    rows = [["(no repair)", attacked_error]] + [
        [name, error] for name, error in sorted(results.items(), key=lambda kv: kv[1])
    ]
    print(
        render_table(
            ["strategy", "repair MAE at attacked points (kWh)"],
            rows,
            title="Ablation — mitigation strategies (ground-truth masks)",
        )
    )
    # Every imputer must beat leaving the attack in place; the paper's
    # linear interpolation must be a competitive baseline.
    for name, error in results.items():
        assert error < attacked_error, f"{name} worse than no repair"
    assert results["linear"] < 2.0 * min(results.values())
