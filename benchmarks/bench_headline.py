"""Bench: the paper's abstract-level headline metrics.

15.2% R² improvement (fed vs cent), 47.9% attack-degradation recovery,
91.3% overall precision, 1.21% FPR, 18.1% training-time reduction.
"""

from repro.experiments.runner import render_headlines


def test_headlines(experiment_result, benchmark):
    measured = benchmark.pedantic(
        experiment_result.headline_metrics, rounds=1, iterations=1
    )
    print()
    print(render_headlines(experiment_result))

    assert measured["r2_improvement_pct"] > 0.0  # federated wins
    assert 0.0 < measured["attack_recovery_pct"] <= 150.0  # filtering recovers
    assert measured["overall_precision"] > 0.5  # precision-focused
    assert measured["overall_fpr_pct"] < 5.0  # low FPR
    assert measured["time_reduction_pct"] > 0.0  # federated faster
