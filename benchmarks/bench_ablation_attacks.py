"""Ablation: attack vectors — DDoS spikes vs. FDI vs. temporal disruption.

The paper's future work (Sec. III-G) names false data injection and
temporal pattern disruption as the next vectors.  This bench runs the
paper's spike-tuned detector against every vector and shows exactly what
the paper anticipates: stealthy FDI and temporal attacks evade a
threshold calibrated for volume spikes (low recall), while DDoS spikes
are caught.
"""

import pytest

from repro.anomaly import AutoencoderConfig, EVChargingAnomalyFilter, detection_metrics
from repro.attacks import (
    BiasInjection,
    DDoSVolumeAttack,
    RampInjection,
    SegmentShuffle,
)
from repro.data import build_paper_clients, generate_paper_dataset, temporal_split
from repro.experiments.reporting import render_table

VECTORS = {
    "ddos_spikes": DDoSVolumeAttack(),
    "fdi_bias": BiasInjection(),
    "fdi_ramp": RampInjection(),
    "temporal_shuffle": SegmentShuffle(),
}

AE_CONFIG = AutoencoderConfig(
    sequence_length=24,
    encoder_units=(32, 16),
    decoder_units=(16, 32),
    epochs=15,
    patience=5,
)


@pytest.fixture(scope="module")
def fitted_filter_and_series():
    clients = build_paper_clients(generate_paper_dataset(seed=13, n_timestamps=1500))
    client = clients[0]
    train, _ = temporal_split(client.series, 0.8)
    anomaly_filter = EVChargingAnomalyFilter(
        sequence_length=24, config=AE_CONFIG, seed=14
    )
    anomaly_filter.fit(train)
    return anomaly_filter, client.series


def test_attack_vectors(fitted_filter_and_series, benchmark):
    anomaly_filter, series = fitted_filter_and_series

    def run_all():
        results = {}
        for name, attack in VECTORS.items():
            injected = attack.inject(series, seed=15)
            outcome = anomaly_filter.filter_anomalies(injected.attacked)
            results[name] = detection_metrics(injected.labels, outcome.flags)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["vector", "precision", "recall", "F1", "FPR"],
            [
                [name, m.precision, m.recall, m.f1, m.false_positive_rate]
                for name, m in results.items()
            ],
            title="Ablation — attack vectors vs. the paper's spike detector",
        )
    )
    # The paper's detector targets sustained high-volume spikes: it must
    # catch DDoS far better than the stealthy future-work vectors.
    assert results["ddos_spikes"].recall > results["fdi_bias"].recall
    assert results["ddos_spikes"].recall > results["temporal_shuffle"].recall
