"""Ablation: look-back sequence length (paper fixes 24 hours).

Sweeps the forecaster's window length on one client and reports R² —
showing that 24 h (one full daily cycle) is a sensible operating point.
"""

import pytest

from repro.data import build_paper_clients, generate_paper_dataset
from repro.experiments.reporting import render_table
from repro.forecasting import FederatedForecaster, forecaster_builder

SEQUENCE_LENGTHS = (6, 12, 24, 48)


@pytest.fixture(scope="module")
def client():
    return build_paper_clients(generate_paper_dataset(seed=17, n_timestamps=1500))[0]


def evaluate_length(client, sequence_length):
    prepared = {client.name: client.prepare(sequence_length, 0.8)}
    forecaster = FederatedForecaster(
        rounds=2,
        epochs_per_round=5,
        builder=forecaster_builder(lstm_units=24, dense_units=8),
        seed=18,
    )
    result = forecaster.train_evaluate(prepared)
    return result.metrics_of(client.name)


def test_sequence_length_sweep(client, benchmark):
    results = benchmark.pedantic(
        lambda: {n: evaluate_length(client, n) for n in SEQUENCE_LENGTHS},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["sequence length (h)", "MAE", "RMSE", "R2"],
            [[n, m.mae, m.rmse, m.r2] for n, m in results.items()],
            title="Ablation — look-back window sweep (zone 102, reduced scale)",
        )
    )
    # The paper's 24 h window must beat the myopic 6 h window.
    assert results[24].r2 > results[6].r2
