"""Bench: regenerate Fig. 2 (Client 1 RMSE/MAE bars, three scenarios)."""

from repro.experiments.fig2 import fig2_series, render_fig2


def test_fig2(experiment_result, benchmark):
    series = benchmark.pedantic(
        fig2_series, args=(experiment_result,), rounds=1, iterations=1
    )
    print()
    print(render_fig2(experiment_result))

    # Paper shape: attacked bars are the tallest, filtering pulls both
    # error metrics back toward the clean level.
    assert series.rmse["Attacked"] > series.rmse["Clean"]
    assert series.mae["Attacked"] > series.mae["Clean"]
    assert series.rmse["Filtered"] < series.rmse["Attacked"]
    assert series.mae["Filtered"] < series.mae["Attacked"]
