"""Shared speedup-regression gate for the standalone benchmark scripts.

Both ``bench_engine.py`` and ``bench_streaming.py`` write a results JSON
of the shape ``{"profile": ..., "workloads": {name: {metric: value}}}``
and gate CI reruns against a committed same-profile baseline: every
``speedup_*`` metric present in the baseline must not fall more than a
slack fraction below it.  Speedups are ratios of times measured on the
same box, so the gate is machine-independent.  Metrics that are pure
timing noise (near-1x ratios of near-identical pipelines) must simply
not be named ``speedup_*`` in the results.
"""

from __future__ import annotations

import json
from collections.abc import Collection
from pathlib import Path


def check_regression(
    results: dict,
    baseline_path: Path,
    slack: float,
    ungated_workloads: Collection[str] = (),
) -> list[str]:
    """Compare every shared speedup metric against a same-profile baseline.

    Returns a list of human-readable failure strings (empty = no
    regression).  A missing or unreadable baseline is reported as a
    failure rather than raised, so CI prints a diagnosable message.
    """
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return [f"cannot read baseline {baseline_path}: {error}"]
    if baseline.get("profile") != results["profile"]:
        return [
            f"baseline profile {baseline.get('profile')!r} != run profile "
            f"{results['profile']!r}: speedup ratios are workload-size dependent; "
            f"gate against a baseline produced with the same profile"
        ]
    failures = []
    for name, payload in results["workloads"].items():
        if name in ungated_workloads:
            continue
        reference = baseline.get("workloads", {}).get(name, {})
        for key, old in reference.items():
            if not key.startswith("speedup_"):
                continue
            new = payload.get(key)
            if new is None:
                continue
            floor = (1.0 - slack) * old
            if new < floor:
                failures.append(
                    f"{name}.{key}: {new:.2f}x < floor {floor:.2f}x "
                    f"(baseline {old:.2f}x, slack {slack:.0%})"
                )
    return failures
