"""Bench: regenerate Table III (per-client federated vs. centralized)."""

from repro.experiments.table3 import render_table3, table3_rows


def test_table3(experiment_result, benchmark):
    rows = benchmark.pedantic(
        table3_rows, args=(experiment_result,), rounds=1, iterations=1
    )
    print()
    print(render_table3(experiment_result))

    by_key = {(r.client_name, r.architecture): r for r in rows}
    for client in ("Client 1", "Client 2", "Client 3"):
        federated = by_key[(client, "Federated")]
        centralized = by_key[(client, "Centralized")]
        # The paper's core architectural claim: the federated model wins
        # R² for every client on identical filtered data.
        assert federated.r2 > centralized.r2
