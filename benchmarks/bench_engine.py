"""Compute-engine benchmark: fused mixed-precision engine vs the seed path.

Four fixed, seeded workloads quantify the substrate the whole
reproduction runs on:

* ``forecaster_fit``   — the paper's LSTM(50)→Dense(10,relu)→Dense(1)
  trained with Adam/MSE.  Timed three ways: a *frozen copy of the seed
  implementation* (float64, unfused, allocating per timestep), the fused
  engine under float64, and the fused engine under the float32 default
  policy.  The float32-vs-seed ratio is the headline speedup.
* ``autoencoder_fit``  — the paper's LSTM autoencoder, engine f64 vs f32.
* ``batch_predict``    — forecaster inference throughput, f64 vs f32.
* ``streaming_ticks``  — PR-1 streaming detector tick loop, f64 vs f32.
* ``forward_kernels``  — per-compute-backend forward throughput at the
  1000-station block shape (the streaming hot path: one ``infer`` over
  ``block × stations`` windows of the compact fleet autoencoder).  Runs
  every backend in :func:`repro.nn.backend.available_backends`; when the
  numba backend is installed its speedup over numpy is gated against the
  committed floor (the ISSUE-5 2x acceptance bar, -30% slack in CI).

Results are written as JSON (``--output``, default ``BENCH_engine.json``)
and printed as a table.  ``--check BASELINE.json`` exits non-zero when
any speedup regresses more than ``--check-slack`` (default 30%) below the
committed baseline — machine-independent because speedups are ratios of
times measured on the same box.

Run::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import check_regression  # noqa: E402

from repro.anomaly.autoencoder import (  # noqa: E402
    AutoencoderConfig,
    LSTMAutoencoder,
    build_autoencoder,
)
from repro.nn import LSTM, Adam, Dense, Sequential, policy  # noqa: E402
from repro.nn import backend as backend_registry  # noqa: E402
from repro.nn import initializers  # noqa: E402
from repro.nn.activations import sigmoid  # noqa: E402
from repro.stream.detector import StreamingDetector  # noqa: E402
from repro.utils.rng import as_generator  # noqa: E402


# ---------------------------------------------------------------------------
# Frozen seed implementation (float64, unfused) — the "old" side of the
# old-vs-new speedup.  This is a faithful copy of the pre-engine LSTM /
# Dense / Adam / fit loop; do not "optimise" it, its slowness is the point.
# ---------------------------------------------------------------------------


class _SeedLSTM:
    def __init__(self, units: int) -> None:
        self.units = units
        self.kernel = None
        self.recurrent = None
        self.bias = None
        self.grads: list[np.ndarray] = []
        self._cache: dict[str, np.ndarray] = {}

    def build(self, features: int, rng: np.random.Generator) -> None:
        u = self.units
        self.kernel = np.asarray(
            initializers.glorot_uniform((features, 4 * u), rng, dtype=np.float64)
        )
        self.recurrent = np.asarray(
            initializers.orthogonal((u, 4 * u), rng, dtype=np.float64)
        )
        self.bias = np.zeros(4 * u, dtype=np.float64)
        self.bias[u : 2 * u] = 1.0
        self.grads = [np.zeros_like(self.kernel), np.zeros_like(self.recurrent),
                      np.zeros_like(self.bias)]

    @property
    def params(self) -> list[np.ndarray]:
        return [self.kernel, self.recurrent, self.bias]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        batch, timesteps, _ = inputs.shape
        units = self.units
        z_input = inputs @ self.kernel + self.bias
        h = np.zeros((batch, units))
        c = np.zeros((batch, units))
        hs = np.empty((batch, timesteps, units))
        cs = np.empty((batch, timesteps, units))
        gates = np.empty((batch, timesteps, 4 * units))
        tanh_cs = np.empty((batch, timesteps, units))
        for t in range(timesteps):
            z = z_input[:, t, :] + h @ self.recurrent
            i = sigmoid(z[:, :units])
            f = sigmoid(z[:, units : 2 * units])
            g = np.tanh(z[:, 2 * units : 3 * units])
            o = sigmoid(z[:, 3 * units :])
            c = f * c + i * g
            tanh_c = np.tanh(c)
            h = o * tanh_c
            gates[:, t, :units] = i
            gates[:, t, units : 2 * units] = f
            gates[:, t, 2 * units : 3 * units] = g
            gates[:, t, 3 * units :] = o
            cs[:, t, :] = c
            hs[:, t, :] = h
            tanh_cs[:, t, :] = tanh_c
        self._cache = {"inputs": inputs, "hs": hs, "cs": cs, "gates": gates,
                       "tanh_cs": tanh_cs}
        return hs[:, -1, :]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        inputs = self._cache["inputs"]
        hs = self._cache["hs"]
        cs = self._cache["cs"]
        gates = self._cache["gates"]
        tanh_cs = self._cache["tanh_cs"]
        batch, timesteps, _ = inputs.shape
        units = self.units
        grad_hs = np.zeros_like(hs)
        grad_hs[:, -1, :] = grad
        grad_inputs = np.empty_like(inputs)
        grad_z_all = np.empty((batch, timesteps, 4 * units))
        dh_next = np.zeros((batch, units))
        dc_next = np.zeros((batch, units))
        recurrent_t = self.recurrent.T
        for t in range(timesteps - 1, -1, -1):
            i = gates[:, t, :units]
            f = gates[:, t, units : 2 * units]
            g = gates[:, t, 2 * units : 3 * units]
            o = gates[:, t, 3 * units :]
            tanh_c = tanh_cs[:, t, :]
            c_prev = cs[:, t - 1, :] if t > 0 else np.zeros((batch, units))
            dh = grad_hs[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c * tanh_c) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            dz = np.empty((batch, 4 * units))
            dz[:, :units] = di * i * (1.0 - i)
            dz[:, units : 2 * units] = df * f * (1.0 - f)
            dz[:, 2 * units : 3 * units] = dg * (1.0 - g * g)
            dz[:, 3 * units :] = do * o * (1.0 - o)
            grad_z_all[:, t, :] = dz
            dh_next = dz @ recurrent_t
            grad_inputs[:, t, :] = dz @ self.kernel.T
        flat_inputs = inputs.reshape(batch * timesteps, -1)
        flat_dz = grad_z_all.reshape(batch * timesteps, 4 * units)
        self.grads[0] += flat_inputs.T @ flat_dz
        self.grads[2] += flat_dz.sum(axis=0)
        if timesteps > 1:
            h_prev = hs[:, :-1, :].reshape(batch * (timesteps - 1), units)
            dz_next = grad_z_all[:, 1:, :].reshape(batch * (timesteps - 1), 4 * units)
            self.grads[1] += h_prev.T @ dz_next
        return grad_inputs


class _SeedDense:
    def __init__(self, units: int, relu: bool = False) -> None:
        self.units = units
        self.relu = relu
        self.kernel = None
        self.bias = None
        self.grads: list[np.ndarray] = []
        self._cache: dict[str, np.ndarray] = {}

    def build(self, in_features: int, rng: np.random.Generator) -> None:
        self.kernel = np.asarray(
            initializers.glorot_uniform((in_features, self.units), rng, dtype=np.float64)
        )
        self.bias = np.zeros(self.units, dtype=np.float64)
        self.grads = [np.zeros_like(self.kernel), np.zeros_like(self.bias)]

    @property
    def params(self) -> list[np.ndarray]:
        return [self.kernel, self.bias]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        pre = inputs @ self.kernel + self.bias
        outputs = np.maximum(pre, 0.0) if self.relu else pre
        self._cache = {"inputs": inputs, "pre": pre}
        return outputs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        inputs = self._cache["inputs"]
        if self.relu:
            grad = grad * (self._cache["pre"] > 0)
        self.grads[0] += inputs.T @ grad
        self.grads[1] += grad.sum(axis=0)
        return grad @ self.kernel.T


class _SeedForecaster:
    """LSTM(50)→Dense(10,relu)→Dense(1) on the seed substrate, Adam/MSE."""

    def __init__(self, units: int = 50, seed: int = 0) -> None:
        rng = as_generator(seed)
        self.lstm = _SeedLSTM(units)
        self.hidden = _SeedDense(10, relu=True)
        self.head = _SeedDense(1)
        self.lstm.build(1, rng)
        self.hidden.build(units, rng)
        self.head.build(10, rng)
        self.layers = [self.lstm, self.hidden, self.head]
        # Seed-era Adam state, id-keyed as it was.
        self.m = [np.zeros_like(p) for layer in self.layers for p in layer.params]
        self.v = [np.zeros_like(p) for layer in self.layers for p in layer.params]
        self.t = 0

    def _adam_step(self, lr=0.001, b1=0.9, b2=0.999, eps=1e-7) -> None:
        self.t += 1
        index = 0
        for layer in self.layers:
            for p, g in zip(layer.params, layer.grads, strict=True):
                m = self.m[index]
                v = self.v[index]
                m *= b1
                m += (1.0 - b1) * g
                v *= b2
                v += (1.0 - b2) * g * g
                m_hat = m / (1.0 - b1**self.t)
                v_hat = v / (1.0 - b2**self.t)
                p -= lr * m_hat / (np.sqrt(v_hat) + eps)
                index += 1

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int, batch_size: int,
            seed: int) -> float:
        rng = as_generator(seed)
        n = len(x)
        last_epoch_loss = 0.0
        for _ in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = x[idx], y[idx]
                out = self.head.forward(self.hidden.forward(self.lstm.forward(xb)))
                diff = out - yb
                loss = float(np.mean(diff * diff))
                for layer in self.layers:
                    for g in layer.grads:
                        g.fill(0.0)
                grad = 2.0 * diff / yb.size
                self.lstm.backward(self.hidden.backward(self.head.backward(grad)))
                self._adam_step()
                epoch_loss += loss * len(idx)
            last_epoch_loss = epoch_loss / n
        return last_epoch_loss


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


def _forecaster_data(n: int, timesteps: int = 24):
    rng = np.random.default_rng(11)
    t = np.arange(n + timesteps)
    series = 0.5 + 0.4 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0.0, 0.02, t.size)
    x = np.stack([series[i : i + timesteps] for i in range(n)])[..., None]
    y = series[timesteps : timesteps + n, None]
    return x, y


def _build_forecaster(dtype: str) -> Sequential:
    model = Sequential(
        [LSTM(50), Dense(10, activation="relu"), Dense(1)], dtype=dtype
    )
    model.compile(Adam(0.001), "mse")
    model.build((24, 1), seed=0)
    return model


def _time(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_forecaster_fit(smoke: bool) -> dict:
    n, epochs, batch_size = (256, 2, 32) if smoke else (512, 3, 32)
    x, y = _forecaster_data(n)

    seed_model = _SeedForecaster(seed=0)
    seed_seconds, seed_loss = _time(lambda: seed_model.fit(x, y, epochs, batch_size, seed=1))

    def run(dtype: str):
        model = _build_forecaster(dtype)
        history = model.fit(x, y, epochs=epochs, batch_size=batch_size, seed=1)
        return history.history["loss"][-1]

    engine64_seconds, engine64_loss = _time(lambda: run("float64"))
    engine32_seconds, engine32_loss = _time(lambda: run("float32"))

    loss_parity = abs(engine64_loss - seed_loss) / max(abs(seed_loss), 1e-12)
    samples = n * epochs
    return {
        "config": {"n_windows": n, "timesteps": 24, "epochs": epochs,
                   "batch_size": batch_size, "architecture": "LSTM(50)-Dense(10,relu)-Dense(1)"},
        "seed_float64_seconds": seed_seconds,
        "engine_float64_seconds": engine64_seconds,
        "engine_float32_seconds": engine32_seconds,
        "speedup_float64_vs_seed": seed_seconds / engine64_seconds,
        "speedup_float32_vs_seed": seed_seconds / engine32_seconds,
        "samples_per_second_float32": samples / engine32_seconds,
        "samples_per_second_seed": samples / seed_seconds,
        "loss_seed": seed_loss,
        "loss_engine_float64": engine64_loss,
        "loss_engine_float32": engine32_loss,
        "loss_parity_rel_err_float64_vs_seed": loss_parity,
    }


def bench_autoencoder_fit(smoke: bool) -> dict:
    n, epochs = (96, 1) if smoke else (192, 2)
    config = AutoencoderConfig(sequence_length=24, epochs=epochs, patience=epochs)
    rng = np.random.default_rng(5)
    windows = rng.random((n, 24, 1))

    def run(dtype: str):
        with policy.dtype_policy(dtype):
            autoencoder = LSTMAutoencoder(config, seed=2)
            autoencoder.fit(windows)
        return autoencoder.history.history["loss"][-1]

    seconds64, _ = _time(lambda: run("float64"))
    seconds32, _ = _time(lambda: run("float32"))
    return {
        "config": {"n_windows": n, "epochs": epochs,
                   "architecture": "LSTM-AE 50-25/25-50 dropout 0.2"},
        "engine_float64_seconds": seconds64,
        "engine_float32_seconds": seconds32,
        "speedup_float32_vs_float64": seconds64 / seconds32,
        "windows_per_second_float32": n * epochs / seconds32,
    }


def bench_batch_predict(smoke: bool) -> dict:
    n = 1024 if smoke else 4096
    x, _ = _forecaster_data(n)

    def run(dtype: str):
        model = _build_forecaster(dtype)
        model.predict(x[:256])  # warm workspaces out of the timing
        seconds, _ = _time(lambda: model.predict(x, batch_size=256))
        return seconds

    seconds64 = run("float64")
    seconds32 = run("float32")
    return {
        "config": {"n_windows": n, "batch_size": 256},
        "engine_float64_seconds": seconds64,
        "engine_float32_seconds": seconds32,
        "speedup_float32_vs_float64": seconds64 / seconds32,
        "windows_per_second_float32": n / seconds32,
    }


def bench_streaming_ticks(smoke: bool) -> dict:
    stations, ticks = (128, 64) if smoke else (256, 96)
    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(8, 4), decoder_units=(4, 8),
        dropout=0.1, epochs=1, patience=1,
    )
    rng = np.random.default_rng(9)
    fleet = rng.random((stations, ticks))

    def run(dtype: str):
        with policy.dtype_policy(dtype):
            autoencoder = LSTMAutoencoder(config, seed=4)
            autoencoder.fit(rng.random((32, 12, 1)))
            detector = StreamingDetector(autoencoder, n_stations=stations, threshold=0.5)
            seconds, _ = _time(lambda: [detector.process_tick(fleet[:, t])
                                        for t in range(ticks)])
        return seconds

    seconds64 = run("float64")
    seconds32 = run("float32")
    total = stations * ticks
    return {
        "config": {"stations": stations, "ticks": ticks},
        "engine_float64_seconds": seconds64,
        "engine_float32_seconds": seconds32,
        "speedup_float32_vs_float64": seconds64 / seconds32,
        "station_ticks_per_second_float32": total / seconds32,
    }


def bench_forward_kernels(smoke: bool) -> dict:
    """Per-backend forward throughput at the streaming block shape.

    One ``Sequential.infer`` pass scores ``block × stations`` windows of
    the compact fleet-scale autoencoder — exactly the call block-mode
    streaming makes per block, and the thing PR 3 measured as ~97% of
    tick time.  Timed per registered-and-available backend with the same
    model and weights; the first two passes per backend are untimed
    (workspace allocation, numba JIT/compile-cache load).
    """
    stations, block = (128, 8) if smoke else (1000, 32)
    repeats = 3 if smoke else 5
    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(8, 4), decoder_units=(4, 8),
        dropout=0.1, epochs=1, patience=1,
    )
    batch = stations * block
    rng = np.random.default_rng(21)
    windows = rng.random((batch, config.sequence_length, 1), dtype=np.float32)
    model = build_autoencoder(config, seed=6)

    payload: dict = {
        "config": {
            "stations": stations, "block": block, "windows_per_pass": batch,
            "sequence_length": config.sequence_length,
            "architecture": "LSTM-AE 8-4/4-8 (compact fleet model)",
            "dtype": str(model.dtype),
        },
        "backends": {},
    }
    seconds_by_backend: dict[str, float] = {}
    for name in backend_registry.available_backends():
        model.set_backend(name)
        model.infer(windows)  # warm: workspaces + (numba) JIT specialisation
        model.infer(windows)
        best = min(_time(lambda: model.infer(windows))[0] for _ in range(repeats))
        seconds_by_backend[name] = best
        payload["backends"][name] = {
            "seconds_per_pass": best,
            "windows_per_second": batch / best,
        }
    model.set_backend(None)
    if "numpy" in seconds_by_backend and "numba" in seconds_by_backend:
        payload["speedup_numba_vs_numpy"] = (
            seconds_by_backend["numpy"] / seconds_by_backend["numba"]
        )
    return payload


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

WORKLOADS = {
    "forecaster_fit": bench_forecaster_fit,
    "autoencoder_fit": bench_autoencoder_fit,
    "batch_predict": bench_batch_predict,
    "streaming_ticks": bench_streaming_ticks,
    "forward_kernels": bench_forward_kernels,
}


#: Workloads whose speedup ratio is python-overhead-bound and sits near
#: 1x — run-to-run jitter exceeds any plausible regression signal, so
#: they are reported but not gated by --check.
UNGATED_WORKLOADS = frozenset({"streaming_ticks"})

#: ISSUE-5 acceptance bar for the numba forward backend, enforced in
#: code (not via the committed baseline JSON, which is regenerated on
#: numpy-only boxes and would silently drop a hand-added entry).  Gated
#: with the same --check-slack as everything else: 2.0 with 30% slack
#: fails below 1.4x.  Only applies when the numba backend actually ran.
NUMBA_FORWARD_SPEEDUP_FLOOR = 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workloads for CI (seconds, not minutes)")
    parser.add_argument("--output", type=Path, default=Path("BENCH_engine.json"))
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate speedups against")
    parser.add_argument("--check-slack", type=float, default=0.30,
                        help="allowed fractional regression vs baseline")
    args = parser.parse_args(argv)

    results = {
        "benchmark": "bench_engine",
        "profile": "smoke" if args.smoke else "full",
        "numpy": np.__version__,
        "unix_time": time.time(),
        "workloads": {},
    }
    for name, fn in WORKLOADS.items():
        print(f"[bench_engine] running {name} ({results['profile']}) ...", flush=True)
        results["workloads"][name] = fn(args.smoke)

    fc = results["workloads"]["forecaster_fit"]
    results["headline"] = {
        "workload": "forecaster_fit",
        "speedup_float32_vs_seed": fc["speedup_float32_vs_seed"],
    }

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n[bench_engine] wrote {args.output}")
    print(f"{'workload':<18} {'old/f64 (s)':>12} {'new f32 (s)':>12} {'speedup':>9}")
    for name, payload in results["workloads"].items():
        if "engine_float32_seconds" not in payload:
            continue
        old = payload.get("seed_float64_seconds", payload.get("engine_float64_seconds"))
        new = payload["engine_float32_seconds"]
        speedup = payload.get("speedup_float32_vs_seed",
                              payload.get("speedup_float32_vs_float64"))
        print(f"{name:<18} {old:>12.3f} {new:>12.3f} {speedup:>8.2f}x")
    kernels = results["workloads"]["forward_kernels"]
    for backend_name, stats in kernels["backends"].items():
        print(f"forward[{backend_name:<7}]   {stats['seconds_per_pass']:>12.3f} "
              f"{stats['windows_per_second']:>12.0f} windows/s")
    if "speedup_numba_vs_numpy" in kernels:
        print(f"forward speedup (numba vs numpy): "
              f"{kernels['speedup_numba_vs_numpy']:.2f}x")
    else:
        print("forward speedup (numba vs numpy): n/a (numba backend unavailable)")
    parity = fc["loss_parity_rel_err_float64_vs_seed"]
    print(f"\nforecaster loss parity (engine f64 vs seed): rel err {parity:.2e}")
    if parity > 1e-3:
        print("[bench_engine] FAIL: engine float64 loss diverged from the seed path")
        return 1

    if args.check is not None:
        failures = check_regression(
            results, args.check, args.check_slack, ungated_workloads=UNGATED_WORKLOADS
        )
        measured = results["workloads"]["forward_kernels"].get("speedup_numba_vs_numpy")
        if measured is not None:
            floor = (1.0 - args.check_slack) * NUMBA_FORWARD_SPEEDUP_FLOOR
            if measured < floor:
                failures.append(
                    f"forward_kernels.speedup_numba_vs_numpy: {measured:.2f}x < floor "
                    f"{floor:.2f}x (acceptance bar {NUMBA_FORWARD_SPEEDUP_FLOOR:.2f}x, "
                    f"slack {args.check_slack:.0%})"
                )
        if failures:
            print("[bench_engine] REGRESSION vs baseline:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"[bench_engine] no regression vs {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
