"""Streaming-engine throughput: micro-batching across stations AND time.

Three profiles, one JSON:

* ``station_batching`` — one tick of fleet inference is ONE autoencoder
  pass over ``(n_stations, L, 1)``, not ``n_stations`` passes over
  ``(1, L, 1)``.  The micro-batched path must stay >= 10x the naive
  per-station loop at 1,000+ stations (it is typically far more).
* ``block`` — block-mode ingestion (PR 3) batches the *time* axis too:
  ``StreamingDetector.process_block`` scores all ``B x n_stations``
  windows of a ``B``-tick block in one inference pass.  Measured against
  two per-tick references on the same fleet: the **frozen pre-block
  pipeline** (triple per-tick validation with the old ``np.unique``
  duplicate check, chunked ``predict(batch_size=256)`` — a faithful copy
  of the PR-1/PR-2 path, like ``bench_engine``'s frozen seed engine; its
  slowness is the point) and the **current** ``process_tick`` loop.
  The block profile uses a compact fleet-scale autoencoder (L=12,
  units (4, 2)): block mode exists to amortise per-tick pipeline
  overhead, which only shows once the per-window forward cost stops
  drowning it — with PR 2's fused engine the pipeline is forward-bound,
  so the measured block-vs-reference speedup (~2x at 1000 stations) is
  the honest ceiling, not the ISSUE's aspirational 5x (see ROADMAP).
* ``ops`` — operational robustness under sensor dropout + station
  churn: a fleet with ``--dropout-rate`` NaN readings replayed through
  a ``missing="impute"`` detector with closed-loop mitigation, with a
  mid-run join+leave of ~1% of the fleet.  Informational (no
  ``speedup_`` metrics): it proves the dropout/churn path sustains
  fleet-scale throughput and exercises imputation + elastic resizing
  end to end.
* ``obs_overhead`` — the cost of PR 6's observability: the same
  block-mode replay timed with the metrics registry off and on
  (best-of-``--obs-repeats`` each), gated IN-CODE at
  ``--obs-overhead-max`` (default 5%) — a near-1x ratio under the
  generic 30% ``speedup_*`` slack would gate nothing, so this check
  lives here, not in ``_gate``.  The enabled run must also be **bit-
  identical** (flags/scores/mitigated) to the disabled one, and its
  registry is exported next to the results JSON as a Prometheus text
  file + JSONL snapshot (uploaded as the ``BENCH_obs`` CI artifact).

Results are written as JSON (``--output``) and ``--check BASELINE.json``
exits non-zero when any ``speedup_*`` metric regresses more than
``--check-slack`` (default 30%) below the committed same-profile
baseline — machine-independent because speedups are ratios of times
measured on the same box.

Run:  PYTHONPATH=src python benchmarks/bench_streaming.py
      PYTHONPATH=src python benchmarks/bench_streaming.py --smoke   # CI-sized

Unlike the table/figure benches this is a standalone script (no
pytest-benchmark) so CI can smoke it directly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _gate import check_regression  # noqa: E402

from repro.anomaly.autoencoder import AutoencoderConfig, LSTMAutoencoder  # noqa: E402
from repro.stream.buffers import RingBufferBank  # noqa: E402
from repro.stream.detector import StreamingDetector  # noqa: E402
from repro.stream.engine import StreamReplayEngine, synthesize_fleet  # noqa: E402
from repro.stream.scaler import StreamingMinMaxScaler  # noqa: E402


def run_micro_batched(
    autoencoder: LSTMAutoencoder,
    fleet: np.ndarray,
    warmup_ticks: int,
    scored_ticks: int,
) -> float:
    """Elapsed seconds for ``scored_ticks`` fleet-wide detector ticks."""
    n_stations = fleet.shape[0]
    scaler = StreamingMinMaxScaler.from_bounds(fleet.min(axis=1), fleet.max(axis=1))
    detector = StreamingDetector(autoencoder, n_stations, scaler=scaler, threshold=1.0)
    for tick in range(warmup_ticks):
        detector.process_tick(fleet[:, tick])
    start = time.perf_counter()
    for tick in range(warmup_ticks, warmup_ticks + scored_ticks):
        detector.process_tick(fleet[:, tick])
    return time.perf_counter() - start


def run_naive_loop(
    autoencoder: LSTMAutoencoder,
    fleet: np.ndarray,
    warmup_ticks: int,
    scored_ticks: int,
) -> float:
    """Elapsed seconds scoring each station with its own forward pass."""
    n_stations = fleet.shape[0]
    detectors = [
        StreamingDetector(
            autoencoder,
            1,
            scaler=StreamingMinMaxScaler.from_bounds(
                fleet[j : j + 1].min(axis=1), fleet[j : j + 1].max(axis=1)
            ),
            threshold=1.0,
        )
        for j in range(n_stations)
    ]
    for tick in range(warmup_ticks):
        for j, detector in enumerate(detectors):
            detector.process_tick(fleet[j : j + 1, tick])
    start = time.perf_counter()
    for tick in range(warmup_ticks, warmup_ticks + scored_ticks):
        for j, detector in enumerate(detectors):
            detector.process_tick(fleet[j : j + 1, tick])
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Frozen pre-block per-tick pipeline — the "old" side of the block
# speedup.  A faithful copy of the PR-1 tick path: every bank call
# re-validates its inputs (three validations per tick, with the
# O(k log k) ``np.unique`` duplicate check this PR replaced), and
# scoring goes through the cache-pressure-chunked ``predict``.  Do not
# "optimise" it; its slowness is the point.
# ---------------------------------------------------------------------------


def run_reference_per_tick(
    autoencoder: LSTMAutoencoder,
    fleet: np.ndarray,
    warmup_ticks: int,
    scored_ticks: int,
) -> float:
    n_stations = fleet.shape[0]
    length = autoencoder.config.sequence_length
    scaler = StreamingMinMaxScaler.from_bounds(fleet.min(axis=1), fleet.max(axis=1))
    buffers = RingBufferBank(n_stations, length)
    stations = np.arange(n_stations)

    def validate(values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if len(np.unique(stations)) != len(stations):
            raise ValueError("duplicate stations")
        return values

    def tick(values: np.ndarray) -> np.ndarray | None:
        validate(values)
        scaler.partial_fit_checked(values, stations)
        validate(values)
        scaled = scaler.transform_checked(values, stations)
        validate(scaled)
        buffers.push_checked(scaled, stations)
        if not buffers.ready.all():
            return None
        windows = buffers.windows()[:, :, None]
        reconstructed = autoencoder.model.predict(windows, batch_size=256)
        errors = np.mean((windows - reconstructed) ** 2, axis=(1, 2))
        return errors > 1.0

    for t in range(warmup_ticks):
        tick(fleet[:, t])
    start = time.perf_counter()
    for t in range(warmup_ticks, warmup_ticks + scored_ticks):
        tick(fleet[:, t])
    return time.perf_counter() - start


def run_block(
    autoencoder: LSTMAutoencoder,
    fleet: np.ndarray,
    warmup_ticks: int,
    scored_ticks: int,
    block_size: int,
) -> float:
    """Elapsed seconds for ``scored_ticks`` ticks ingested block-wise."""
    n_stations = fleet.shape[0]
    scaler = StreamingMinMaxScaler.from_bounds(fleet.min(axis=1), fleet.max(axis=1))
    detector = StreamingDetector(autoencoder, n_stations, scaler=scaler, threshold=1.0)
    if warmup_ticks:
        detector.process_block(fleet[:, :warmup_ticks])
    start = time.perf_counter()
    for first in range(warmup_ticks, warmup_ticks + scored_ticks, block_size):
        detector.process_block(fleet[:, first : first + block_size])
    return time.perf_counter() - start


def station_batching_profile(args: argparse.Namespace) -> dict:
    config = AutoencoderConfig(
        sequence_length=args.seq_len, encoder_units=(8, 4), decoder_units=(4, 8)
    )
    autoencoder = LSTMAutoencoder(config, seed=args.seed)
    warmup = args.seq_len - 1
    n_ticks = warmup + max(args.ticks, args.naive_ticks)
    fleet = synthesize_fleet(args.stations, n_ticks, seed=args.seed)

    batched_elapsed = run_micro_batched(autoencoder, fleet, warmup, args.ticks)
    batched_rate = args.stations * args.ticks / batched_elapsed
    naive_elapsed = run_naive_loop(autoencoder, fleet, warmup, args.naive_ticks)
    naive_rate = args.stations * args.naive_ticks / naive_elapsed
    return {
        "stations": args.stations,
        "sequence_length": args.seq_len,
        "micro_batched_readings_per_second": batched_rate,
        "naive_readings_per_second": naive_rate,
        "speedup_micro_batched_vs_naive": batched_rate / naive_rate,
    }


def block_profile(args: argparse.Namespace) -> dict:
    # Compact fleet-scale per-station model: small enough that per-tick
    # pipeline overhead is visible next to the forward pass.
    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(4, 2), decoder_units=(2, 4)
    )
    autoencoder = LSTMAutoencoder(config, seed=args.seed)
    warmup = config.sequence_length - 1
    ticks = args.block_ticks
    fleet = synthesize_fleet(args.stations, warmup + ticks, seed=args.seed)

    reference = run_reference_per_tick(autoencoder, fleet, warmup, ticks)
    per_tick = run_micro_batched(autoencoder, fleet, warmup, ticks)
    block = run_block(autoencoder, fleet, warmup, ticks, args.block_size)
    return {
        "stations": args.stations,
        "sequence_length": config.sequence_length,
        "block_size": args.block_size,
        "reference_ticks_per_second": ticks / reference,
        "per_tick_ticks_per_second": ticks / per_tick,
        "block_ticks_per_second": ticks / block,
        "speedup_block_vs_reference_tick": reference / block,
        "speedup_block_vs_per_tick": per_tick / block,
        # Informational only (no "speedup_" prefix, so never gated): at
        # smoke scale (128 stations, no predict chunking to remove) the
        # two per-tick pipelines are nearly identical and this ratio is
        # ~1x timing noise; it only measures real removed overhead at
        # full scale (~1.6x at 1000 stations), where CI does not run.
        "ratio_per_tick_vs_reference": reference / per_tick,
    }


def ops_profile(args: argparse.Namespace) -> dict:
    """Dropout + churn replay: the operational-robustness workload."""
    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(4, 2), decoder_units=(2, 4)
    )
    autoencoder = LSTMAutoencoder(config, seed=args.seed)
    warmup = config.sequence_length - 1
    n_ticks = warmup + args.ops_ticks
    fleet = synthesize_fleet(
        args.stations, n_ticks, seed=args.seed, dropout_rate=args.dropout_rate
    )
    scaler = StreamingMinMaxScaler.from_bounds(
        np.nanmin(fleet, axis=1), np.nanmax(fleet, axis=1)
    )
    detector = StreamingDetector(
        autoencoder, args.stations, scaler=scaler, threshold=1.0, missing="impute"
    )
    engine = StreamReplayEngine(detector, mitigator="hold_last_good")
    churn = max(1, args.stations // 100)
    half = n_ticks // 2

    start = time.perf_counter()
    first = engine.run(fleet[:, :half], block_size=args.block_size)
    # Mid-run churn: ~1% of the fleet joins cold, then leaves again.
    engine.add_stations(
        churn, data_min=np.zeros(churn), data_max=np.full(churn, 1000.0)
    )
    engine.drop_stations(np.arange(args.stations, args.stations + churn))
    second = engine.run(fleet[:, half:], block_size=args.block_size)
    elapsed = time.perf_counter() - start

    return {
        "stations": args.stations,
        "dropout_rate": args.dropout_rate,
        "block_size": args.block_size,
        "churned_stations": churn,
        "missing_readings": int(first.missing.sum() + second.missing.sum()),
        "ops_ticks_per_second": n_ticks / elapsed,
        "ops_readings_per_second": n_ticks * args.stations / elapsed,
    }


def obs_overhead_profile(args: argparse.Namespace) -> dict:
    """Time the block-mode replay with observability off vs on.

    Fresh engine per repetition (identical warmup state both ways).
    The off/on legs are interleaved — one off replay, then one on
    replay, ``obs_repeats`` times, best-of per leg — so slow machine
    drift (thermal throttling, a neighbour grabbing cores mid-bench)
    hits both legs alike instead of masquerading as overhead.  Raises
    ``AssertionError`` if enabling observability moves a single output
    bit — the parity contract is checked here on the bench workload as
    well as in ``tests/obs``.
    """
    from repro import obs
    from repro.obs import JsonlSink, render_prometheus

    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(4, 2), decoder_units=(2, 4)
    )
    autoencoder = LSTMAutoencoder(config, seed=args.seed)
    n_ticks = config.sequence_length - 1 + args.obs_ticks
    fleet = synthesize_fleet(args.stations, n_ticks, seed=args.seed)

    def replay() -> tuple[float, object]:
        scaler = StreamingMinMaxScaler.from_bounds(
            fleet.min(axis=1), fleet.max(axis=1)
        )
        detector = StreamingDetector(
            autoencoder, args.stations, scaler=scaler, threshold=1.0
        )
        engine = StreamReplayEngine(detector, mitigator="hold_last_good")
        start = time.perf_counter()
        report = engine.run(fleet, block_size=args.block_size)
        return time.perf_counter() - start, report

    previous_state = obs.enabled()
    try:
        obs.disable()
        replay()  # shared warmup (workspace/cache build) outside both legs
        registry = obs.enable(obs.MetricsRegistry())
        off_elapsed = on_elapsed = float("inf")
        off_report = on_report = None
        for _ in range(args.obs_repeats):
            obs.disable()
            elapsed, off_report = replay()
            off_elapsed = min(off_elapsed, elapsed)
            obs.enable(registry)
            elapsed, on_report = replay()
            on_elapsed = min(on_elapsed, elapsed)

        for attr in ("flags", "scores", "mitigated"):
            off_values = getattr(off_report, attr)
            on_values = getattr(on_report, attr)
            if not np.array_equal(off_values, on_values, equal_nan=True):
                raise AssertionError(
                    f"observability parity violated: report.{attr} differs "
                    "between obs-off and obs-on replays"
                )

        prom_path = args.output.parent / "BENCH_obs_metrics.prom"
        jsonl_path = args.output.parent / "BENCH_obs_metrics.jsonl"
        prom_path.write_text(render_prometheus(registry))
        JsonlSink(jsonl_path).write(registry)
    finally:
        if previous_state:
            obs.enable()
        else:
            obs.disable()

    return {
        "stations": args.stations,
        "block_size": args.block_size,
        "repeats": args.obs_repeats,
        "off_ticks_per_second": args.obs_ticks / off_elapsed,
        "on_ticks_per_second": args.obs_ticks / on_elapsed,
        # Gated in-code at --obs-overhead-max, NOT via speedup_ keys.
        "obs_overhead_fraction": on_elapsed / off_elapsed - 1.0,
        "parity": "bit-identical",
        "exposition_files": [prom_path.name, jsonl_path.name],
    }


def slo_profile(args: argparse.Namespace) -> dict:
    """Ingest→flag latency SLO under injected faults, v1 vs v2 wire.

    Serves the same fleet twice through real loopback sockets with a
    ``ChaosTransport`` injecting ``--slo-fault-rate`` each of
    drop/duplicate/reorder/delay:

    * **per-reading leg** — clients pinned to protocol v1
      (``versions=(1,)``), one DATA frame per reading;
    * **batch leg** — protocol v2 negotiation, ``send_block`` moves each
      gateway's whole station column per tick as one BATCH_DATA frame
      acked by one vectorized BATCH_ACK.

    Both legs report end-to-end readings/s plus the p50/p99 of per-tick
    ingest latency (first frame arrival → flag decision, watermark hold
    included).  ``speedup_batch_vs_per_reading`` is baseline-gated like
    every ``speedup_*`` metric, and ``main`` additionally enforces the
    >= 3x batch-over-per-reading floor in-code at >= 128 stations.
    """
    import asyncio

    from repro.serve import ChaosTransport, IngestClient, IngestionServer, TcpTransport

    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(4, 2), decoder_units=(2, 4)
    )
    stations = min(args.stations, args.slo_stations)
    ticks = args.slo_ticks
    rate = args.slo_fault_rate
    fleet = synthesize_fleet(stations, ticks, seed=args.seed)
    stations_per_client = max(1, stations // 16)
    n_clients = -(-stations // stations_per_client)

    def build_engine() -> StreamReplayEngine:
        # Fresh seeded model per leg: closed-loop feedback mutates the
        # pipeline, and both legs must start from the identical state.
        autoencoder = LSTMAutoencoder(config, seed=args.seed)
        scaler = StreamingMinMaxScaler.from_bounds(
            fleet.min(axis=1), fleet.max(axis=1)
        )
        detector = StreamingDetector(
            autoencoder, stations, scaler=scaler, threshold=1.0, missing="impute"
        )
        return StreamReplayEngine(detector, mitigator="hold_last_good")

    async def scenario(versions: tuple[int, ...]) -> tuple[object, list, float]:
        server = IngestionServer(
            build_engine(),
            block_size=args.slo_block_size,
            lateness=4,
            capacity=4096,
            queue_size=4096,
            max_inflight=1024,
        )
        await server.start()
        clients = []
        for i in range(n_clients):
            transport = ChaosTransport(
                TcpTransport("127.0.0.1", server.port),
                drop=rate,
                duplicate=rate,
                reorder=rate,
                delay=rate,
                seed=args.seed * 7919 + i,
            )
            client = IngestClient(
                client_id=f"gateway-{i}",
                transport=transport,
                seed=args.seed + i,
                max_attempts=20,
                versions=versions,
            )
            await client.connect()
            clients.append(client)
        start = time.perf_counter()
        if max(versions) >= 2:
            for tick in range(ticks):
                for i, client in enumerate(clients):
                    lo = i * stations_per_client
                    idx = np.arange(lo, min(lo + stations_per_client, stations))
                    await client.send_block(idx, tick, fleet[idx, tick])
        else:
            for tick in range(ticks):
                for station in range(stations):
                    await clients[station // stations_per_client].send(
                        station, tick, fleet[station, tick]
                    )
        for client in clients:
            await client.drain(timeout=300)
            await client.close()
        await server.finish()
        return server, clients, time.perf_counter() - start

    def leg_stats(server, clients, elapsed) -> dict:
        latencies = np.asarray(server.ingest_latencies, dtype=np.float64)
        return {
            "served_ticks": int(server.served()["ticks"].size),
            "acked_readings": sum(len(client.ack_log) for client in clients),
            "readings_per_second": stations * ticks / elapsed,
            "ingest_latency_p50_ms": float(np.percentile(latencies, 50)) * 1e3,
            "ingest_latency_p99_ms": float(np.percentile(latencies, 99)) * 1e3,
            "ingest_latency_max_ms": float(latencies.max()) * 1e3,
        }

    v1 = leg_stats(*asyncio.run(scenario((1,))))
    v2 = leg_stats(*asyncio.run(scenario((1, 2))))
    return {
        "stations": stations,
        "ticks": ticks,
        "block_size": args.slo_block_size,
        "fault_rate_each": rate,
        "faults": "drop, duplicate, reorder, delay",
        "clients": n_clients,
        "served_ticks": v1["served_ticks"],
        "acked_readings": v1["acked_readings"],
        # Per-reading (protocol v1) leg keeps its historical key names so
        # artifact diffs stay continuous across the v2 redesign.
        "ingest_readings_per_second": v1["readings_per_second"],
        "ingest_latency_p50_ms": v1["ingest_latency_p50_ms"],
        "ingest_latency_p99_ms": v1["ingest_latency_p99_ms"],
        "ingest_latency_max_ms": v1["ingest_latency_max_ms"],
        "batch_served_ticks": v2["served_ticks"],
        "batch_acked_readings": v2["acked_readings"],
        "batch_readings_per_second": v2["readings_per_second"],
        "batch_ingest_latency_p50_ms": v2["ingest_latency_p50_ms"],
        "batch_ingest_latency_p99_ms": v2["ingest_latency_p99_ms"],
        "batch_ingest_latency_max_ms": v2["ingest_latency_max_ms"],
        "speedup_batch_vs_per_reading": (
            v2["readings_per_second"] / v1["readings_per_second"]
        ),
    }


def scale_profile(args: argparse.Namespace) -> dict:
    """Sharded fleet throughput across station counts and shard counts.

    Sweeps ``--scale-stations`` fleets through a single-process replay
    and through :class:`ShardedFleetEngine` at each ``--scale-shards``
    worker count (``failover=False``: pure throughput, no journal),
    reporting readings/s and readings/s-per-core.  The
    ``speedup_sharded_vs_single`` metric is the best sharded/single
    ratio observed at >= 2 shards; the in-code multi-core gate (sharded
    must beat single-process) only arms when the box actually has >= 2
    cores — worker processes cannot beat one process on one core.
    """
    from repro.stream.shard import ShardedFleetEngine

    config = AutoencoderConfig(
        sequence_length=12, encoder_units=(4, 2), decoder_units=(2, 4)
    )
    autoencoder = LSTMAutoencoder(config, seed=args.seed)
    warmup = config.sequence_length - 1
    ticks = args.scale_ticks
    cores = os.cpu_count() or 1
    station_counts = [int(n) for n in args.scale_stations.split(",") if n.strip()]
    shard_counts = [int(k) for k in args.scale_shards.split(",") if k.strip()]

    def build_pipeline(fleet: np.ndarray) -> StreamReplayEngine:
        scaler = StreamingMinMaxScaler.from_bounds(
            fleet.min(axis=1), fleet.max(axis=1)
        )
        detector = StreamingDetector(
            autoencoder, fleet.shape[0], scaler=scaler, threshold=1.0
        )
        return StreamReplayEngine(detector, mitigator=None)

    def timed_replay(engine, fleet: np.ndarray) -> float:
        engine.step_block(fleet[:, :warmup])
        start = time.perf_counter()
        for first in range(warmup, warmup + ticks, args.block_size):
            engine.step_block(fleet[:, first : first + args.block_size])
        return time.perf_counter() - start

    sweep = []
    best_speedup = 0.0
    for n_stations in station_counts:
        fleet = synthesize_fleet(n_stations, warmup + ticks, seed=args.seed)
        single_elapsed = timed_replay(build_pipeline(fleet), fleet)
        single_rate = n_stations * ticks / single_elapsed
        entry = {
            "stations": n_stations,
            "single_readings_per_second": single_rate,
            "single_readings_per_second_per_core": single_rate,
            "sharded": [],
        }
        for n_shards in shard_counts:
            if n_shards < 2 or n_shards > n_stations:
                continue
            engine = ShardedFleetEngine(
                build_pipeline(fleet), n_shards, failover=False
            )
            try:
                elapsed = timed_replay(engine, fleet)
            finally:
                engine.close()
            rate = n_stations * ticks / elapsed
            entry["sharded"].append(
                {
                    "n_shards": n_shards,
                    "readings_per_second": rate,
                    "readings_per_second_per_core": rate / min(n_shards, cores),
                    "speedup_vs_single": rate / single_rate,
                }
            )
            best_speedup = max(best_speedup, rate / single_rate)
        sweep.append(entry)

    return {
        "cores": cores,
        "ticks": ticks,
        "block_size": args.block_size,
        "station_counts": station_counts,
        "shard_counts": shard_counts,
        "sweep": sweep,
        # Best sharded/single ratio at >= 2 shards, baseline-gated like
        # every other speedup_* metric.
        "speedup_sharded_vs_single": best_speedup,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stations", type=int, default=1000)
    parser.add_argument("--ticks", type=int, default=20, help="scored ticks (batched path)")
    parser.add_argument("--naive-ticks", type=int, default=3, help="scored ticks (naive path)")
    parser.add_argument("--block-ticks", type=int, default=64, help="scored ticks (block profile)")
    parser.add_argument("--ops-ticks", type=int, default=64, help="scored ticks (ops profile)")
    parser.add_argument("--dropout-rate", type=float, default=0.05,
                        help="fraction of NaN readings in the ops profile")
    parser.add_argument("--block-size", type=int, default=32)
    parser.add_argument("--seq-len", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    # At full scale a single ~2-block replay is noisy (±10% allocator/
    # scheduler jitter on quarter-second samples), so the overhead legs
    # need both length and repetition for the 5% gate to measure signal.
    parser.add_argument("--obs-ticks", type=int, default=160,
                        help="scored ticks (obs_overhead profile)")
    parser.add_argument("--obs-repeats", type=int, default=5,
                        help="repetitions per leg of the obs_overhead timing (best-of)")
    parser.add_argument("--obs-overhead-max", type=float, default=0.05,
                        help="fail when enabling observability costs more than this fraction")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this micro-batch speedup (default: 10 at >=1000 stations, 3 below)",
    )
    parser.add_argument("--slo-ticks", type=int, default=64,
                        help="ticks served per station (slo profile)")
    parser.add_argument("--slo-stations", type=int, default=128,
                        help="stations cap for the slo profile (socket fan-in bound)")
    parser.add_argument("--slo-block-size", type=int, default=8,
                        help="detector block size in the slo profile")
    parser.add_argument("--slo-fault-rate", type=float, default=0.01,
                        help="per-fault injection rate (drop/dup/reorder/delay) in the slo profile")
    parser.add_argument("--scale-ticks", type=int, default=48,
                        help="scored ticks per leg (scale profile)")
    parser.add_argument("--scale-stations", default="1000,10000,50000",
                        help="comma-separated station counts swept by the scale profile")
    parser.add_argument("--scale-shards", default="1,2,4",
                        help="comma-separated shard counts swept by the scale profile")
    parser.add_argument(
        "--profiles",
        default="station_batching,block,ops,obs_overhead,slo,scale",
        help="comma-separated subset of profiles to run",
    )
    parser.add_argument("--output", type=Path, default=Path("BENCH_streaming.json"))
    parser.add_argument("--check", type=Path, default=None,
                        help="baseline JSON to gate speedups against")
    parser.add_argument("--check-slack", type=float, default=0.30,
                        help="allowed fractional regression vs baseline")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 128 stations, fewer ticks",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.stations = min(args.stations, 128)
        args.ticks = min(args.ticks, 6)
        args.naive_ticks = min(args.naive_ticks, 2)
        args.block_ticks = min(args.block_ticks, 33)
        args.ops_ticks = min(args.ops_ticks, 33)
        args.obs_ticks = min(args.obs_ticks, 33)
        # Short smoke replays are noisier; more repeats keep the 5% gate honest.
        args.obs_repeats = max(args.obs_repeats, 5)
        args.slo_ticks = min(args.slo_ticks, 40)
        args.scale_ticks = min(args.scale_ticks, 16)
        args.scale_stations = "1000,4000"
        args.scale_shards = "1,2"
    known_profiles = ("station_batching", "block", "ops", "obs_overhead", "slo", "scale")
    profiles = [name.strip() for name in args.profiles.split(",") if name.strip()]
    unknown = sorted(set(profiles) - set(known_profiles))
    if unknown:
        parser.error(
            f"unknown profile(s) {', '.join(unknown)}; "
            f"choose from {', '.join(known_profiles)}"
        )
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 10.0 if args.stations >= 1000 else 3.0

    results = {
        "benchmark": "bench_streaming",
        "profile": "smoke" if args.smoke else "full",
        "numpy": np.__version__,
        "unix_time": time.time(),
        "workloads": {},
    }

    station = obs_overhead = None
    if "station_batching" in profiles:
        print(f"[bench_streaming] station_batching: {args.stations} stations ...", flush=True)
        station = station_batching_profile(args)
        results["workloads"]["station_batching"] = station
        print(
            f"micro-batched: {station['micro_batched_readings_per_second']:,.0f} readings/s | "
            f"naive loop: {station['naive_readings_per_second']:,.0f} readings/s | "
            f"speedup {station['speedup_micro_batched_vs_naive']:.1f}x "
            f"(required: >= {min_speedup:.0f}x)"
        )

    if "block" in profiles:
        print(f"[bench_streaming] block: {args.stations} stations, B={args.block_size} ...", flush=True)
        block = block_profile(args)
        results["workloads"]["block"] = block
        print(
            f"pre-block reference: {block['reference_ticks_per_second']:,.1f} ticks/s | "
            f"per-tick: {block['per_tick_ticks_per_second']:,.1f} ticks/s | "
            f"block(B={args.block_size}): {block['block_ticks_per_second']:,.1f} ticks/s"
        )
        print(
            f"block vs pre-block reference: {block['speedup_block_vs_reference_tick']:.2f}x | "
            f"block vs per-tick: {block['speedup_block_vs_per_tick']:.2f}x | "
            f"per-tick vs reference: {block['ratio_per_tick_vs_reference']:.2f}x"
        )

    if "ops" in profiles:
        print(
            f"[bench_streaming] ops: {args.stations} stations, "
            f"{100 * args.dropout_rate:.0f}% dropout, churn ...", flush=True,
        )
        ops = ops_profile(args)
        results["workloads"]["ops"] = ops
        print(
            f"dropout+churn replay: {ops['ops_ticks_per_second']:,.1f} ticks/s "
            f"({ops['ops_readings_per_second']:,.0f} readings/s) | "
            f"{ops['missing_readings']} readings imputed | "
            f"{ops['churned_stations']} stations joined+left mid-run"
        )

    if "obs_overhead" in profiles:
        print(
            f"[bench_streaming] obs_overhead: {args.stations} stations, "
            f"best of {args.obs_repeats} ...", flush=True,
        )
        obs_overhead = obs_overhead_profile(args)
        results["workloads"]["obs_overhead"] = obs_overhead
        print(
            f"obs off: {obs_overhead['off_ticks_per_second']:,.1f} ticks/s | "
            f"obs on: {obs_overhead['on_ticks_per_second']:,.1f} ticks/s | "
            f"overhead {100 * obs_overhead['obs_overhead_fraction']:+.1f}% "
            f"(allowed: <= {100 * args.obs_overhead_max:.0f}%) | outputs bit-identical"
        )

    slo = None
    if "slo" in profiles:
        print(
            f"[bench_streaming] slo: {min(args.stations, args.slo_stations)} stations, "
            f"{100 * args.slo_fault_rate:.1f}% drop/dup/reorder/delay, "
            f"v1 per-reading + v2 batch legs ...", flush=True,
        )
        slo = slo_profile(args)
        results["workloads"]["slo"] = slo
        print(
            f"served {slo['served_ticks']} ticks via {slo['clients']} chaotic clients | "
            f"v1 per-reading: {slo['ingest_readings_per_second']:,.0f} readings/s "
            f"(p50 {slo['ingest_latency_p50_ms']:.1f} ms, "
            f"p99 {slo['ingest_latency_p99_ms']:.1f} ms)"
        )
        print(
            f"v2 batch: {slo['batch_readings_per_second']:,.0f} readings/s "
            f"(p50 {slo['batch_ingest_latency_p50_ms']:.1f} ms, "
            f"p99 {slo['batch_ingest_latency_p99_ms']:.1f} ms) | "
            f"speedup {slo['speedup_batch_vs_per_reading']:.2f}x"
        )

    scale = None
    if "scale" in profiles:
        print(
            f"[bench_streaming] scale: stations {args.scale_stations} x "
            f"shards {args.scale_shards} on {os.cpu_count() or 1} core(s) ...",
            flush=True,
        )
        scale = scale_profile(args)
        results["workloads"]["scale"] = scale
        for entry in scale["sweep"]:
            sharded = " | ".join(
                f"{leg['n_shards']} shards: {leg['readings_per_second']:,.0f} r/s "
                f"({leg['speedup_vs_single']:.2f}x)"
                for leg in entry["sharded"]
            )
            print(
                f"{entry['stations']} stations — single: "
                f"{entry['single_readings_per_second']:,.0f} r/s"
                + (f" | {sharded}" if sharded else "")
            )

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[bench_streaming] wrote {args.output}")

    if station is not None and station["speedup_micro_batched_vs_naive"] < min_speedup:
        print(
            f"[bench_streaming] FAIL: micro-batched speedup "
            f"{station['speedup_micro_batched_vs_naive']:.1f}x < {min_speedup:.0f}x"
        )
        return 1

    if obs_overhead is not None and obs_overhead["obs_overhead_fraction"] > args.obs_overhead_max:
        print(
            f"[bench_streaming] FAIL: observability overhead "
            f"{100 * obs_overhead['obs_overhead_fraction']:.1f}% > "
            f"{100 * args.obs_overhead_max:.0f}%"
        )
        return 1

    # The v2 batch wire only earns its keep once per-frame overhead
    # dominates, which needs fleet-scale fan-in; below 128 stations the
    # floor stays informational.
    if (
        slo is not None
        and slo["stations"] >= 128
        and slo["speedup_batch_vs_per_reading"] < 3.0
    ):
        print(
            f"[bench_streaming] FAIL: v2 batch ingest only "
            f"{slo['speedup_batch_vs_per_reading']:.2f}x the v1 per-reading leg "
            f"at {slo['stations']} stations (required: >= 3x)"
        )
        return 1

    # Worker processes cannot beat one process on one core, so the
    # sharded-beats-single gate only arms on a multi-core box (CI's
    # shard leg runs on >= 2-core runners).
    if scale is not None and scale["cores"] >= 2 and scale["speedup_sharded_vs_single"] <= 1.0:
        print(
            f"[bench_streaming] FAIL: sharded fleet never beat single-process "
            f"on {scale['cores']} cores "
            f"(best {scale['speedup_sharded_vs_single']:.2f}x)"
        )
        return 1

    if args.check is not None:
        failures = check_regression(results, args.check, args.check_slack)
        if failures:
            print("[bench_streaming] REGRESSION vs baseline:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(f"[bench_streaming] no regression vs {args.check}")
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
