"""Streaming-engine throughput: micro-batched fleet inference vs naive loop.

The whole point of :mod:`repro.stream` is that one tick of fleet
inference is ONE autoencoder forward pass over ``(n_stations, L, 1)``,
not ``n_stations`` forward passes over ``(1, L, 1)``.  This bench
replays the same simulated fleet both ways and reports
station-readings/second; the micro-batched path must be >= 10x the
naive per-station loop at 1,000+ stations (it is typically far more).

Run:  PYTHONPATH=src python benchmarks/bench_streaming.py
      PYTHONPATH=src python benchmarks/bench_streaming.py --smoke   # CI-sized

Unlike the table/figure benches this is a standalone script (no
pytest-benchmark) so CI can smoke it directly.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.anomaly.autoencoder import AutoencoderConfig, LSTMAutoencoder
from repro.stream.detector import StreamingDetector
from repro.stream.engine import synthesize_fleet
from repro.stream.scaler import StreamingMinMaxScaler


def run_micro_batched(
    autoencoder: LSTMAutoencoder,
    fleet: np.ndarray,
    warmup_ticks: int,
    scored_ticks: int,
) -> float:
    """Elapsed seconds for ``scored_ticks`` fleet-wide detector ticks."""
    n_stations = fleet.shape[0]
    scaler = StreamingMinMaxScaler.from_bounds(fleet.min(axis=1), fleet.max(axis=1))
    detector = StreamingDetector(autoencoder, n_stations, scaler=scaler, threshold=1.0)
    for tick in range(warmup_ticks):
        detector.process_tick(fleet[:, tick])
    start = time.perf_counter()
    for tick in range(warmup_ticks, warmup_ticks + scored_ticks):
        detector.process_tick(fleet[:, tick])
    return time.perf_counter() - start


def run_naive_loop(
    autoencoder: LSTMAutoencoder,
    fleet: np.ndarray,
    warmup_ticks: int,
    scored_ticks: int,
) -> float:
    """Elapsed seconds scoring each station with its own forward pass."""
    n_stations = fleet.shape[0]
    detectors = [
        StreamingDetector(
            autoencoder,
            1,
            scaler=StreamingMinMaxScaler.from_bounds(
                fleet[j : j + 1].min(axis=1), fleet[j : j + 1].max(axis=1)
            ),
            threshold=1.0,
        )
        for j in range(n_stations)
    ]
    for tick in range(warmup_ticks):
        for j, detector in enumerate(detectors):
            detector.process_tick(fleet[j : j + 1, tick])
    start = time.perf_counter()
    for tick in range(warmup_ticks, warmup_ticks + scored_ticks):
        for j, detector in enumerate(detectors):
            detector.process_tick(fleet[j : j + 1, tick])
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stations", type=int, default=1000)
    parser.add_argument("--ticks", type=int, default=20, help="scored ticks (batched path)")
    parser.add_argument("--naive-ticks", type=int, default=3, help="scored ticks (naive path)")
    parser.add_argument("--seq-len", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail below this speedup (default: 10 at >=1000 stations, 3 below)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 128 stations, fewer ticks",
    )
    args = parser.parse_args()
    if args.smoke:
        args.stations = min(args.stations, 128)
        args.ticks = min(args.ticks, 6)
        args.naive_ticks = min(args.naive_ticks, 2)
    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = 10.0 if args.stations >= 1000 else 3.0

    config = AutoencoderConfig(
        sequence_length=args.seq_len, encoder_units=(8, 4), decoder_units=(4, 8)
    )
    autoencoder = LSTMAutoencoder(config, seed=args.seed)
    warmup = args.seq_len - 1
    n_ticks = warmup + max(args.ticks, args.naive_ticks)
    print(f"synthesizing fleet: {args.stations} stations x {n_ticks} ticks ...")
    fleet = synthesize_fleet(args.stations, n_ticks, seed=args.seed)

    batched_elapsed = run_micro_batched(autoencoder, fleet, warmup, args.ticks)
    batched_rate = args.stations * args.ticks / batched_elapsed
    print(
        f"micro-batched: {args.ticks} ticks in {batched_elapsed:.3f}s "
        f"-> {batched_rate:,.0f} readings/s "
        f"({1e3 * batched_elapsed / args.ticks:.2f} ms/tick for the whole fleet)"
    )

    naive_elapsed = run_naive_loop(autoencoder, fleet, warmup, args.naive_ticks)
    naive_rate = args.stations * args.naive_ticks / naive_elapsed
    print(
        f"naive loop:    {args.naive_ticks} ticks in {naive_elapsed:.3f}s "
        f"-> {naive_rate:,.0f} readings/s"
    )

    speedup = batched_rate / naive_rate
    print(f"speedup: {speedup:.1f}x (required: >= {min_speedup:.0f}x)")
    if speedup < min_speedup:
        raise SystemExit(
            f"FAIL: micro-batched speedup {speedup:.1f}x < {min_speedup:.0f}x"
        )
    print("PASS")


if __name__ == "__main__":
    main()
