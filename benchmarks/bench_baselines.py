"""Bench: LSTM forecaster vs. classical baselines.

The paper's introduction positions LSTMs against "traditional
statistical models".  This bench measures the federated LSTM against
persistence, seasonal-naive and linear-AR baselines on the same client
windows.
"""

import pytest

from repro.data import build_paper_clients, generate_paper_dataset
from repro.experiments.reporting import render_table
from repro.forecasting import (
    AutoregressiveForecaster,
    FederatedForecaster,
    PersistenceForecaster,
    SeasonalNaiveForecaster,
    evaluate_regression,
    forecaster_builder,
)


@pytest.fixture(scope="module")
def prepared_client():
    client = build_paper_clients(generate_paper_dataset(seed=23, n_timestamps=2000))[0]
    return client.name, client.prepare(24, 0.8)


def run_comparison(name, data):
    results = {}
    baselines = {
        "persistence": PersistenceForecaster(),
        "seasonal_naive": SeasonalNaiveForecaster(24),
        "linear_ar": AutoregressiveForecaster().fit(data.x_train, data.y_train),
    }
    for label, baseline in baselines.items():
        predictions = data.inverse_predictions(baseline.predict(data.x_test))
        results[label] = evaluate_regression(data.test_targets_kwh, predictions)

    forecaster = FederatedForecaster(
        rounds=3,
        epochs_per_round=5,
        builder=forecaster_builder(lstm_units=32, dense_units=8),
        seed=24,
    )
    results["federated_lstm"] = forecaster.train_evaluate({name: data}).metrics_of(name)
    return results


def test_lstm_vs_baselines(prepared_client, benchmark):
    name, data = prepared_client
    results = benchmark.pedantic(
        run_comparison, args=(name, data), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["model", "MAE", "RMSE", "R2"],
            [[label, m.mae, m.rmse, m.r2] for label, m in results.items()],
            title="LSTM vs. classical baselines (zone 102, reduced scale)",
        )
    )
    # The LSTM must beat the naive floor and be competitive with the
    # best linear model (the paper's motivation for deep forecasters).
    assert results["federated_lstm"].r2 > results["persistence"].r2
    assert results["federated_lstm"].r2 > results["seasonal_naive"].r2
    assert results["federated_lstm"].rmse < 1.25 * results["linear_ar"].rmse
