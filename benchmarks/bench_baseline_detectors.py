"""Bench: LSTM-autoencoder detector vs. statistical baselines.

Compares the paper's contextual detector against global z-score, IQR
fences and a rolling-MAD band on the same attacked series — showing why
the paper reaches for a learned detector on strongly seasonal data.
"""

import pytest

from repro.anomaly import (
    AutoencoderConfig,
    EVChargingAnomalyFilter,
    detection_metrics,
)
from repro.anomaly.baselines import IQRDetector, RollingMADDetector, ZScoreDetector
from repro.attacks import AttackScenario, DDoSVolumeAttack
from repro.data import build_paper_clients, generate_paper_dataset, temporal_split
from repro.experiments.reporting import render_table

AE_CONFIG = AutoencoderConfig(
    sequence_length=24,
    encoder_units=(32, 16),
    decoder_units=(16, 32),
    epochs=15,
    patience=5,
)


@pytest.fixture(scope="module")
def attacked_zone():
    clients = build_paper_clients(generate_paper_dataset(seed=29, n_timestamps=1500))
    client = clients[0]
    outcome = AttackScenario([DDoSVolumeAttack()], name="det").apply([client], seed=30)[
        client.name
    ]
    train, _ = temporal_split(client.series, 0.8)
    return train, outcome


def run_comparison(train, outcome):
    results = {}
    for label, detector in (
        ("zscore", ZScoreDetector(k=3.0)),
        ("iqr", IQRDetector(k=1.5)),
        ("rolling_mad", RollingMADDetector(window=25, k=4.0)),
    ):
        detector.fit(train)
        flags = detector.detect(outcome.client.series)
        results[label] = detection_metrics(outcome.labels, flags)

    anomaly_filter = EVChargingAnomalyFilter(
        sequence_length=24, config=AE_CONFIG, seed=31
    )
    anomaly_filter.fit(train)
    filtered = anomaly_filter.filter_anomalies(outcome.client.series)
    results["lstm_autoencoder"] = detection_metrics(outcome.labels, filtered.flags)
    return results


def test_detector_comparison(attacked_zone, benchmark):
    train, outcome = attacked_zone
    results = benchmark.pedantic(
        run_comparison, args=(train, outcome), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["detector", "precision", "recall", "F1", "FPR"],
            [
                [label, m.precision, m.recall, m.f1, m.false_positive_rate]
                for label, m in results.items()
            ],
            title="Detector comparison (zone 102, reduced scale)",
        )
    )
    # Global amplitude tests only catch spikes that leave the overall
    # demand range, so they are precision-perfect but blind to in-range
    # (contextual) anomalies — a 2x spike at 3 am looks like a normal
    # 7 pm value to them.  The learned contextual detector must recover
    # strictly more of the attacked points than every amplitude test.
    ae_recall = results["lstm_autoencoder"].recall
    assert ae_recall > results["zscore"].recall
    assert ae_recall > results["iqr"].recall
    assert ae_recall > results["rolling_mad"].recall
