"""Bench: regenerate Fig. 3 (per-client R², federated vs. centralized)."""

from repro.experiments.fig3 import fig3_series, render_fig3


def test_fig3(experiment_result, benchmark):
    series = benchmark.pedantic(
        fig3_series, args=(experiment_result,), rounds=1, iterations=1
    )
    print()
    print(render_fig3(experiment_result))

    for client, federated_r2 in series.federated.items():
        assert federated_r2 > series.centralized[client]
