"""Ablation: detection threshold rule — 98th percentile vs. MSD vs. MAD.

The paper fixes the 98th-percentile rule; the work it cites ([4]
Shrestha et al.) uses Mean-Standard-Deviation and Median-Absolute-
Deviation rules.  This bench compares all three on the same attacked
series (zone 102, reduced scale) and prints precision/recall/F1/FPR per
rule.
"""

import pytest

from repro.anomaly import (
    AutoencoderConfig,
    EVChargingAnomalyFilter,
    detection_metrics,
)
from repro.attacks import AttackScenario, DDoSVolumeAttack
from repro.data import build_paper_clients, generate_paper_dataset, temporal_split
from repro.experiments.reporting import render_table

RULES = ("percentile", "msd", "mad")

AE_CONFIG = AutoencoderConfig(
    sequence_length=24,
    encoder_units=(32, 16),
    decoder_units=(16, 32),
    epochs=15,
    patience=5,
)


@pytest.fixture(scope="module")
def attacked_zone():
    clients = build_paper_clients(generate_paper_dataset(seed=5, n_timestamps=1500))
    client = clients[0]
    outcome = AttackScenario([DDoSVolumeAttack()], name="ablation").apply(
        [client], seed=6
    )[client.name]
    train, _ = temporal_split(client.series, 0.8)
    return train, outcome


def evaluate_rule(rule_name, train, outcome):
    anomaly_filter = EVChargingAnomalyFilter(
        sequence_length=24, threshold_rule=rule_name, config=AE_CONFIG, seed=11
    )
    anomaly_filter.fit(train)
    filtered = anomaly_filter.filter_anomalies(outcome.client.series)
    return detection_metrics(outcome.labels, filtered.flags)


def test_threshold_rules(attacked_zone, benchmark):
    train, outcome = attacked_zone
    results = benchmark.pedantic(
        lambda: {rule: evaluate_rule(rule, train, outcome) for rule in RULES},
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["rule", "precision", "recall", "F1", "FPR"],
            [
                [rule, m.precision, m.recall, m.f1, m.false_positive_rate]
                for rule, m in results.items()
            ],
            title="Ablation — threshold rules (zone 102, reduced scale)",
        )
    )
    for rule, metrics in results.items():
        assert metrics.f1 > 0.2, f"{rule} detection collapsed"
    # The paper's percentile rule must be a competitive default.
    best_f1 = max(m.f1 for m in results.values())
    assert results["percentile"].f1 > 0.6 * best_f1
